"""Snapshot codec: a live manager's durable state as one plain dict.

A snapshot captures everything the journal would otherwise have to replay:
the namespace (folders, retention policies, files), every dataset's version
chain and chunk-maps, replication targets, write sessions, outstanding space
reservations, the GC seen-sets and the set of known benefactors.  Registry
*liveness* is deliberately not captured — it is soft state that benefactors
re-establish through registration — so restored benefactors start offline.

The codec is import-cycle free: it duck-types the manager and late-imports
the record classes it needs to rebuild.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.chunk_map import ChunkMap
from repro.core.dataset import DatasetMetadata, DatasetVersion
from repro.util.config import RetentionConfig, RetentionPolicyKind

SNAPSHOT_FORMAT = 1


def _encode_retention(retention: RetentionConfig) -> Dict[str, object]:
    return {
        "kind": retention.kind.value,
        "purge_after": retention.purge_after,
        "keep_last": retention.keep_last,
    }


def _decode_retention(payload: Optional[Dict[str, object]]) -> Optional[RetentionConfig]:
    if payload is None:
        return None
    return RetentionConfig(
        kind=RetentionPolicyKind(payload["kind"]),
        purge_after=payload["purge_after"],
        keep_last=payload["keep_last"],
    )


def _encode_version(version: DatasetVersion) -> Dict[str, object]:
    return {
        "version": version.version,
        "size": version.size,
        "created_at": version.created_at,
        "producer": version.producer,
        "timestep": version.timestep,
        "attributes": dict(version.attributes),
        "obsolete": version.obsolete,
        "chunk_map": version.chunk_map.to_dict(),
    }


def _decode_version(payload: Dict[str, object]) -> DatasetVersion:
    return DatasetVersion(
        version=payload["version"],
        chunk_map=ChunkMap.from_dict(payload["chunk_map"]),
        size=payload["size"],
        created_at=payload["created_at"],
        producer=payload.get("producer", ""),
        timestep=payload.get("timestep"),
        attributes=dict(payload.get("attributes", {})),
        obsolete=bool(payload.get("obsolete", False)),
    )


def encode_manager_state(manager) -> Dict[str, object]:
    """Serialize the manager's durable state (call under its meta lock)."""
    namespace = manager.namespace
    folders = []
    for path, folder in namespace.iter_folders("/"):
        entry: Dict[str, object] = {"path": path, "created_at": folder.created_at}
        if folder.retention is not None:
            entry["retention"] = _encode_retention(folder.retention)
        folders.append(entry)
    files = [
        {"path": path, "dataset_id": e.dataset_id, "created_at": e.created_at}
        for path, e in namespace.iter_files("/")
    ]
    datasets = [
        {
            "dataset_id": dataset.dataset_id,
            "name": dataset.name,
            "folder": dataset.folder,
            "next_version": dataset._next_version,
            "versions": [_encode_version(v) for v in dataset.versions],
        }
        for dataset in manager._datasets.values()
    ]
    sessions = [
        {
            "session_id": s.session_id,
            "client_id": s.client_id,
            "path": s.path,
            "dataset_id": s.dataset_id,
            "version": s.version,
            "stripe": list(s.stripe),
            "reservation_id": s.reservation_id,
            "created_at": s.created_at,
            "replication_level": s.replication_level,
            "committed": s.committed,
            "aborted": s.aborted,
            "acked_chunks": {cid: list(holders) for cid, holders in s.acked_chunks.items()},
        }
        for s in manager._sessions.values()
    ]
    reservations = [
        {
            "reservation_id": r.reservation_id,
            "client_id": r.client_id,
            "dataset_id": r.dataset_id,
            "amount": r.amount,
            "benefactors": list(r.benefactors),
            "created_at": r.created_at,
            "lease": r.lease,
            "consumed": r.consumed,
        }
        for r in manager.reservations.outstanding()
    ]
    benefactors = [
        {
            "benefactor_id": record.benefactor_id,
            "address": record.address,
            "registered_at": record.registered_at,
        }
        for record in manager.registry.known()
    ]
    return {
        "format": SNAPSHOT_FORMAT,
        "epoch": getattr(manager, "epoch", 1),
        "counters": {
            "session": manager._session_seq,
            "dataset": manager._dataset_seq,
        },
        "namespace": {"folders": folders, "files": files},
        "datasets": datasets,
        "replication_targets": dict(manager._replication_targets),
        "sessions": sessions,
        "reservations": reservations,
        "gc_seen": {bid: sorted(seen) for bid, seen in manager._gc_seen.items()},
        "corrupt": {
            chunk_id: dict(holders)
            for chunk_id, holders in manager._corrupt.items()
        },
        "benefactors": benefactors,
    }


def restore_manager_state(manager, state: Dict[str, object]) -> None:
    """Load a snapshot dict into a freshly constructed manager."""
    from repro.manager.manager import WriteSessionRecord  # late: avoid cycle

    namespace = manager.namespace
    folders: List[Dict[str, object]] = state["namespace"]["folders"]
    # Parents before children: iter_folders guarantees it on encode, but the
    # JSON round-trip is easier to trust sorted by depth.
    for entry in sorted(folders, key=lambda e: e["path"].count("/")):
        folder = namespace.ensure_folder(entry["path"], created_at=entry["created_at"])
        folder.retention = _decode_retention(entry.get("retention"))
    for entry in state["namespace"]["files"]:
        namespace.add_file(
            entry["path"], entry["dataset_id"], created_at=entry["created_at"]
        )

    for payload in state["datasets"]:
        dataset = DatasetMetadata(
            dataset_id=payload["dataset_id"],
            name=payload["name"],
            folder=payload["folder"],
        )
        for version_payload in payload["versions"]:
            dataset.commit_version(_decode_version(version_payload))
        dataset.note_version_allocated(payload["next_version"] - 1)
        manager._datasets[dataset.dataset_id] = dataset

    manager._replication_targets.update(state.get("replication_targets", {}))

    for payload in state["sessions"]:
        session = WriteSessionRecord(
            session_id=payload["session_id"],
            client_id=payload["client_id"],
            path=payload["path"],
            dataset_id=payload["dataset_id"],
            version=payload["version"],
            stripe=list(payload["stripe"]),
            reservation_id=payload["reservation_id"],
            created_at=payload["created_at"],
            replication_level=payload["replication_level"],
            committed=payload["committed"],
            aborted=payload["aborted"],
            acked_chunks={
                cid: list(holders)
                for cid, holders in payload.get("acked_chunks", {}).items()
            },
        )
        manager._sessions[session.session_id] = session

    for payload in state.get("reservations", []):
        manager.reservations.restore(
            reservation_id=payload["reservation_id"],
            client_id=payload["client_id"],
            dataset_id=payload["dataset_id"],
            amount=payload["amount"],
            benefactors=list(payload["benefactors"]),
            created_at=payload["created_at"],
            lease=payload["lease"],
            consumed=payload.get("consumed", 0),
        )

    for bid, seen in state.get("gc_seen", {}).items():
        manager._gc_seen[bid] = set(seen)

    for chunk_id, holders in state.get("corrupt", {}).items():
        manager._corrupt[chunk_id] = dict(holders)

    for payload in state.get("benefactors", []):
        manager.registry.restore(
            payload["benefactor_id"],
            payload["address"],
            registered_at=payload.get("registered_at", 0.0),
        )

    counters = state.get("counters", {})
    manager._session_seq = max(manager._session_seq, counters.get("session", 0))
    manager._dataset_seq = max(manager._dataset_seq, counters.get("dataset", 0))

    # The primary epoch only ever moves forward — a restored snapshot must
    # never roll a manager back behind an epoch it has already observed.
    manager.epoch = max(getattr(manager, "epoch", 1),
                        int(state.get("epoch", 1)))
