"""The write-ahead journal: CRC-framed records in an append-only file.

Frame layout (all integers big-endian)::

    [4-byte payload length][4-byte CRC32 of payload][payload: UTF-8 JSON]

A record is valid only when the full frame is present *and* the CRC matches.
A crash can tear the tail of the file mid-frame; readers stop at the first
invalid frame and report how many bytes of the file were trustworthy, so the
writer can truncate the torn tail before resuming appends.

Fsync policies trade write-path latency for durability:

* ``"always"`` — fsync after every record; nothing is ever lost.
* ``"commit"`` — fsync only on records flagged durable (commit/abort/
  delete/prune).  Because fsync flushes the whole file prefix, every record
  *before* a durability point is persisted with it: committed checkpoints
  are always crash-durable, while the tail of non-durable records (open
  sessions, acks) may be lost — exactly the state clients cannot rely on
  anyway before their commit returns.
* ``"never"`` — leave flushing to the OS (benchmarks, tests).
"""

from __future__ import annotations

import json
import os
import struct
import threading
import time
import zlib
from typing import Dict, List, Optional, Tuple

FSYNC_NEVER = "never"
FSYNC_COMMIT = "commit"
FSYNC_ALWAYS = "always"

_HEADER = struct.Struct(">II")


def encode_record(record: Dict[str, object]) -> bytes:
    """Serialize one record to its framed wire form."""
    payload = json.dumps(record, separators=(",", ":"), sort_keys=True).encode("utf-8")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def scan_frames(data: bytes) -> Tuple[List[Dict[str, object]], int]:
    """Decode every valid frame in ``data``.

    Returns ``(records, valid_bytes)`` where ``valid_bytes`` is the offset of
    the first torn or corrupt frame (== ``len(data)`` for a clean log).
    """
    records: List[Dict[str, object]] = []
    offset = 0
    total = len(data)
    while offset + _HEADER.size <= total:
        length, checksum = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > total:
            break  # torn tail: payload truncated mid-write
        payload = data[start:end]
        if zlib.crc32(payload) != checksum:
            break  # torn or corrupt frame; nothing after it is trustworthy
        try:
            records.append(json.loads(payload.decode("utf-8")))
        except (UnicodeDecodeError, json.JSONDecodeError):
            break
        offset = end
    return records, offset


def read_journal_records(path: str) -> Tuple[List[Dict[str, object]], int, bool]:
    """Read a journal file, tolerating a torn tail.

    Returns ``(records, valid_bytes, torn)`` where ``torn`` flags that bytes
    beyond ``valid_bytes`` were present but unreadable.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    records, valid = scan_frames(data)
    return records, valid, valid < len(data)


class JournalWriter:
    """Appends framed records to one journal segment.

    Appends always reach the OS (``flush``) so an in-process "crash" — the
    simulation kills the manager object, not the OS — observes every record;
    ``fsync`` is issued per the policy to survive a machine crash.
    """

    def __init__(self, path: str, fsync_policy: str = FSYNC_COMMIT) -> None:
        if fsync_policy not in (FSYNC_NEVER, FSYNC_COMMIT, FSYNC_ALWAYS):
            raise ValueError(f"unknown fsync policy: {fsync_policy!r}")
        self.path = path
        self.fsync_policy = fsync_policy
        self._handle = open(path, "ab")
        self._lock = threading.Lock()
        #: Records appended through this writer (not counting prior contents).
        self.records_written = 0
        self.fsyncs = 0
        #: Optional histogram series observing fsync latency
        #: (``ManagerPersistence.attach_metrics`` wires it).
        self.fsync_timer = None

    def _fsync(self) -> None:
        start = time.perf_counter()
        os.fsync(self._handle.fileno())
        self.fsyncs += 1
        if self.fsync_timer is not None:
            self.fsync_timer.observe(time.perf_counter() - start)

    def append(self, record: Dict[str, object], durable: bool = False) -> None:
        """Append one record; ``durable`` marks a durability point."""
        frame = encode_record(record)
        with self._lock:
            self._handle.write(frame)
            self._handle.flush()
            if self.fsync_policy == FSYNC_ALWAYS or (
                durable and self.fsync_policy == FSYNC_COMMIT
            ):
                self._fsync()
            self.records_written += 1

    def sync(self) -> None:
        with self._lock:
            self._handle.flush()
            self._fsync()

    def tell(self) -> int:
        with self._lock:
            self._handle.flush()
            return self._handle.tell()

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                self._handle.close()


def truncate_torn_tail(path: str) -> Optional[int]:
    """Truncate ``path`` at its last valid frame boundary.

    Returns the number of torn bytes removed, or ``None`` when the file was
    already clean.
    """
    _records, valid, torn = read_journal_records(path)
    if not torn:
        return None
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(valid)
    return size - valid
