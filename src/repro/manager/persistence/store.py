"""On-disk layout and lifecycle of the manager's durable state.

One directory holds everything::

    journal_dir/
      snapshot-<lsn>.json   # full state through record <lsn> (at most one kept)
      journal-<lsn>.wal     # records <lsn>+1, <lsn>+2, ... (the active segment)

``lsn`` is the global ordinal of journal records (1-based).  Taking a
snapshot writes ``snapshot-<L>.json`` atomically (tmp + fsync + rename),
rotates the journal to a fresh ``journal-<L>.wal`` segment and deletes the
compacted predecessors — the journal never grows without bound.

Loading scans segments in base order, skips records a snapshot already
covers, truncates a torn tail (a crash mid-append) and leaves the writer
positioned at the tail so appends resume with consistent LSNs.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.exceptions import JournalClosedError
from repro.manager.persistence.journal import (
    FSYNC_COMMIT,
    FSYNC_NEVER,
    JournalWriter,
    read_journal_records,
)

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d+)\.json$")
_JOURNAL_RE = re.compile(r"^journal-(\d+)\.wal$")


class ManagerPersistence:
    """Owns the journal directory: appends, snapshots, compaction, loading."""

    def __init__(self, journal_dir: str, fsync_policy: str = FSYNC_COMMIT,
                 snapshot_every_n_records: int = 4096) -> None:
        if snapshot_every_n_records <= 0:
            raise ValueError("snapshot_every_n_records must be positive")
        self.journal_dir = journal_dir
        self.fsync_policy = fsync_policy
        self.snapshot_every_n_records = snapshot_every_n_records
        os.makedirs(journal_dir, exist_ok=True)
        self._writer: Optional[JournalWriter] = None
        self._closed = False
        self._lock = threading.RLock()
        #: Ordinal of the last record appended or observed at load time.
        self.last_lsn = 0
        #: Ordinal covered by the most recent snapshot (0 = none).
        self.snapshot_lsn = 0
        self.snapshots_taken = 0
        # Latency histograms wired by attach_metrics (owned by the manager's
        # registry); None until a registry is attached.
        self._append_timer = None
        self._fsync_timer = None
        self._snapshot_timer = None

    def attach_metrics(self, registry) -> None:
        """Record append/fsync/snapshot latency into ``registry``'s histograms."""
        self._append_timer = registry.histogram(
            "journal_append_seconds", "Write-ahead journal append latency."
        )
        self._fsync_timer = registry.histogram(
            "journal_fsync_seconds", "Journal fsync latency."
        )
        self._snapshot_timer = registry.histogram(
            "journal_snapshot_seconds",
            "Snapshot write + journal compaction latency.",
        )
        with self._lock:
            if self._writer is not None:
                self._writer.fsync_timer = self._fsync_timer

    def _wire_writer(self, writer: JournalWriter) -> JournalWriter:
        writer.fsync_timer = self._fsync_timer
        return writer

    # ------------------------------------------------------------- file layout
    def _snapshot_path(self, lsn: int) -> str:
        return os.path.join(self.journal_dir, f"snapshot-{lsn:012d}.json")

    def _journal_path(self, base: int) -> str:
        return os.path.join(self.journal_dir, f"journal-{base:012d}.wal")

    def _list(self, pattern: re.Pattern) -> List[Tuple[int, str]]:
        entries = []
        for name in os.listdir(self.journal_dir):
            match = pattern.match(name)
            if match is not None:
                entries.append((int(match.group(1)), os.path.join(self.journal_dir, name)))
        entries.sort()
        return entries

    def _fsync_dir(self) -> None:
        if self.fsync_policy == FSYNC_NEVER:
            return
        try:
            fd = os.open(self.journal_dir, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir fds
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # ---------------------------------------------------------------- loading
    def has_prior_state(self) -> bool:
        """True when the directory holds a snapshot or a non-empty journal."""
        with self._lock:
            if self._list(_SNAPSHOT_RE):
                return True
            return any(
                os.path.getsize(path) > 0 for _base, path in self._list(_JOURNAL_RE)
            )

    def load(self) -> Tuple[Optional[Dict[str, object]], List[Dict[str, object]], int]:
        """Scan the directory and position the writer at the journal tail.

        Returns ``(snapshot_state, records_to_replay, torn_bytes_dropped)``.
        The torn tail (if any) is truncated so subsequent appends extend a
        clean log.
        """
        with self._lock:
            self._require_open_store()
            self._close_writer()
            # A crash between writing snapshot-<lsn>.json.tmp and renaming it
            # strands the .tmp; nothing else ever deletes it.
            for name in os.listdir(self.journal_dir):
                if name.endswith(".tmp"):
                    os.remove(os.path.join(self.journal_dir, name))
            state: Optional[Dict[str, object]] = None
            snapshot_lsn = 0
            for lsn, path in reversed(self._list(_SNAPSHOT_RE)):
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        state = json.load(handle)
                    snapshot_lsn = lsn
                    break
                except (OSError, json.JSONDecodeError):
                    continue  # half-written snapshot from a crash; older one wins

            replay: List[Dict[str, object]] = []
            torn_total = 0
            last_lsn = snapshot_lsn
            for base, path in self._list(_JOURNAL_RE):
                records, valid, torn = read_journal_records(path)
                if torn:
                    size = os.path.getsize(path)
                    with open(path, "r+b") as handle:
                        handle.truncate(valid)
                    torn_total += size - valid
                lsn = base
                for record in records:
                    lsn += 1
                    if lsn > snapshot_lsn:
                        replay.append(record)
                last_lsn = max(last_lsn, lsn)
                if torn:
                    break  # nothing after a tear is trustworthy
            self.snapshot_lsn = snapshot_lsn
            self.last_lsn = last_lsn
            self._open_writer_at_tail()
            return state, replay, torn_total

    def _open_writer_at_tail(self) -> None:
        journals = self._list(_JOURNAL_RE)
        if journals:
            _base, path = journals[-1]
        else:
            path = self._journal_path(self.snapshot_lsn)
        self._writer = self._wire_writer(JournalWriter(path, self.fsync_policy))

    def _require_open_store(self) -> None:
        if self._closed:
            raise JournalClosedError(
                f"persistence for {self.journal_dir} was closed; a successor "
                "manager owns the journal now"
            )

    def _ensure_open(self) -> None:
        self._require_open_store()
        if self._writer is None:
            self.load()

    def _close_writer(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    # --------------------------------------------------------------- appending
    def append(self, op: str, payload: Dict[str, object], durable: bool = False) -> int:
        """Append one record; returns its LSN."""
        with self._lock:
            self._ensure_open()
            if self._append_timer is not None:
                with self._append_timer.time():
                    self._writer.append({"op": op, "data": payload}, durable=durable)
            else:
                self._writer.append({"op": op, "data": payload}, durable=durable)
            self.last_lsn += 1
            return self.last_lsn

    def should_snapshot(self) -> bool:
        with self._lock:
            return self.last_lsn - self.snapshot_lsn >= self.snapshot_every_n_records

    def take_snapshot(self, state: Dict[str, object]) -> int:
        """Write ``state`` as the new snapshot and compact the journal.

        The snapshot is durable on disk *before* the journal it compacts is
        deleted, so a crash at any point leaves either the old (snapshot,
        journal) pair or the new one.
        """
        started = time.perf_counter()
        with self._lock:
            self._ensure_open()
            lsn = self.last_lsn
            path = self._snapshot_path(lsn)
            temporary = path + ".tmp"
            with open(temporary, "w", encoding="utf-8") as handle:
                json.dump(state, handle, separators=(",", ":"))
                handle.flush()
                if self.fsync_policy != FSYNC_NEVER:
                    os.fsync(handle.fileno())
            os.replace(temporary, path)
            self._fsync_dir()

            self._close_writer()
            self._writer = self._wire_writer(
                JournalWriter(self._journal_path(lsn), self.fsync_policy)
            )
            self.snapshot_lsn = lsn
            self.snapshots_taken += 1
            for old_lsn, old_path in self._list(_SNAPSHOT_RE):
                if old_lsn < lsn:
                    os.remove(old_path)
            for base, old_path in self._list(_JOURNAL_RE):
                if base < lsn:
                    os.remove(old_path)
            self._fsync_dir()
            if self._snapshot_timer is not None:
                self._snapshot_timer.observe(time.perf_counter() - started)
            return lsn

    # ------------------------------------------------------------------ stats
    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "last_lsn": self.last_lsn,
                "snapshot_lsn": self.snapshot_lsn,
                "records_since_snapshot": self.last_lsn - self.snapshot_lsn,
                "snapshots_taken": self.snapshots_taken,
                "fsyncs": self._writer.fsyncs if self._writer is not None else 0,
            }

    def journal_bytes(self) -> int:
        """Size of the active journal segment (benchmarks)."""
        with self._lock:
            self._ensure_open()
            return self._writer.tell()

    def close(self) -> None:
        with self._lock:
            self._close_writer()
