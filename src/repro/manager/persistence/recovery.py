"""Journal replay: re-apply logical redo records onto a restored manager.

Records are *logical redo* records: they carry the results the live manager
computed (allocated session ids, stripes, version numbers, commit-time chunk
maps), not the inputs, so replay is deterministic even though stripe
allocation depends on registry liveness that no longer exists at recovery
time.  Every applier mutates manager state directly — no online checks, no
transaction counting, and no re-journaling (the records being replayed are
already in the journal).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.core.chunk_map import ChunkMap
from repro.core.dataset import DatasetMetadata, DatasetVersion
from repro.core.namespace import split_path
from repro.exceptions import JournalCorruptError, ReservationError
from repro.util.config import RetentionConfig, RetentionPolicyKind


@dataclass
class RecoveryReport:
    """Outcome of one manager recovery."""

    snapshot_loaded: bool = False
    records_replayed: int = 0
    torn_bytes_dropped: int = 0
    duration: float = 0.0
    datasets: int = 0
    versions: int = 0
    sessions_active: int = 0
    benefactors_known: int = 0


def _apply_register(manager, data) -> None:
    manager.registry.restore(
        data["benefactor_id"], data["address"], registered_at=data.get("t", 0.0)
    )


def _apply_make_folder(manager, data) -> None:
    folder = manager.namespace.ensure_folder(data["path"], created_at=data.get("t", 0.0))
    if data.get("retention_kind") is not None:
        folder.retention = RetentionConfig(
            kind=RetentionPolicyKind(data["retention_kind"]),
            purge_after=data["purge_after"],
            keep_last=data["keep_last"],
        )


def _apply_set_retention(manager, data) -> None:
    manager.namespace.set_retention(
        data["path"],
        RetentionConfig(
            kind=RetentionPolicyKind(data["retention_kind"]),
            purge_after=data["purge_after"],
            keep_last=data["keep_last"],
        ),
    )


def _apply_delete(manager, data) -> None:
    entry = manager.namespace.remove_file(data["path"])
    manager._datasets.pop(entry.dataset_id, None)
    manager._replication_targets.pop(entry.dataset_id, None)


def _apply_remove_folder(manager, data) -> None:
    # Files beneath the folder were dropped by their own replayed delete
    # records; force still covers folders that only contained sub-folders.
    manager.namespace.remove_folder(data["path"], force=data.get("force", False))


def _apply_create_session(manager, data) -> None:
    from repro.manager.manager import WriteSessionRecord  # late: avoid cycle

    now = data["created_at"]
    path = data["path"]
    dataset_id = data["dataset_id"]
    parent, _name = split_path(path)
    manager.namespace.ensure_folder(parent, created_at=now)
    if manager.namespace.file_exists(path):
        dataset = manager._datasets[dataset_id]
    else:
        dataset = DatasetMetadata(dataset_id=dataset_id, name=path, folder=parent)
        manager._datasets[dataset_id] = dataset
        manager.namespace.add_file(path, dataset_id, created_at=now)
        manager._note_dataset_id(dataset_id)
    manager._replication_targets[dataset_id] = data["replication_level"]
    manager.reservations.restore(
        reservation_id=data["reservation_id"],
        client_id=data["client_id"],
        dataset_id=dataset_id,
        amount=data.get("expected_size", 0),
        benefactors=[s["benefactor_id"] for s in data["stripe"]],
        created_at=now,
        lease=manager.config.reservation_lease,
    )
    dataset.note_version_allocated(data["version"])
    session = WriteSessionRecord(
        session_id=data["session_id"],
        client_id=data["client_id"],
        path=path,
        dataset_id=dataset_id,
        version=data["version"],
        stripe=list(data["stripe"]),
        reservation_id=data["reservation_id"],
        created_at=now,
        replication_level=data["replication_level"],
    )
    manager._sessions[session.session_id] = session
    manager._note_session_id(session.session_id)


def _apply_extend_stripe(manager, data) -> None:
    manager._sessions[data["session_id"]].stripe = list(data["stripe"])


def _apply_put_chunks_ack(manager, data) -> None:
    session = manager._sessions[data["session_id"]]
    for placement in data["placements"]:
        holders = session.acked_chunks.setdefault(str(placement["chunk_id"]), [])
        for benefactor in placement.get("benefactors", ()):
            if benefactor not in holders:
                holders.append(benefactor)


def _release_quietly(manager, reservation_id: str) -> None:
    # Reservation expiry collection is not journaled (lease GC is soft
    # state), so a replayed commit/abort may reference a reservation the
    # live manager had already collected.
    try:
        manager.reservations.release(reservation_id)
    except ReservationError:
        pass


def _apply_commit(manager, data) -> None:
    session = manager._sessions[data["session_id"]]
    dataset = manager._datasets[session.dataset_id]
    dataset.commit_version(
        DatasetVersion(
            version=session.version,
            chunk_map=ChunkMap.from_dict(data["chunk_map"]),
            size=data["size"],
            created_at=data["created_at"],
            producer=data.get("producer", ""),
            timestep=data.get("timestep"),
            attributes=dict(data.get("attributes", {})),
        )
    )
    session.committed = True
    _release_quietly(manager, session.reservation_id)


def _apply_abort(manager, data) -> None:
    session = manager._sessions[data["session_id"]]
    session.aborted = True
    _release_quietly(manager, session.reservation_id)


def _apply_prune(manager, data) -> None:
    manager._datasets[data["dataset_id"]].remove_version(data["version"])


def _apply_gc(manager, data) -> None:
    manager._gc_seen.setdefault(data["benefactor_id"], set()).update(data["dead"])


def _apply_drop_benefactor(manager, data) -> None:
    for dataset in manager._datasets.values():
        for version in dataset.versions:
            version.chunk_map.drop_benefactor(data["benefactor_id"])


def _apply_epoch(manager, data) -> None:
    # Promotions journal their epoch bump; replay must never move backwards.
    manager.epoch = max(getattr(manager, "epoch", 1), int(data["epoch"]))


def _apply_corrupt_chunk(manager, data) -> None:
    chunk_id = data["chunk_id"]
    benefactor_id = data["benefactor_id"]
    for dataset in manager._datasets.values():
        for version in dataset.versions:
            for placement in version.chunk_map.placements_for(chunk_id):
                if benefactor_id in placement.benefactors:
                    placement.remove_replica(benefactor_id)
    manager._corrupt.setdefault(chunk_id, {})[benefactor_id] = data.get("t", 0.0)


_APPLIERS: Dict[str, Callable] = {
    "register": _apply_register,
    "make_folder": _apply_make_folder,
    "set_retention": _apply_set_retention,
    "delete": _apply_delete,
    "remove_folder": _apply_remove_folder,
    "create_session": _apply_create_session,
    "extend_stripe": _apply_extend_stripe,
    "put_chunks_ack": _apply_put_chunks_ack,
    "commit": _apply_commit,
    "abort": _apply_abort,
    "prune": _apply_prune,
    "gc": _apply_gc,
    "drop_benefactor": _apply_drop_benefactor,
    "corrupt_chunk": _apply_corrupt_chunk,
    "epoch": _apply_epoch,
}


def apply_record(manager, record: Dict[str, object]) -> None:
    """Apply one journal record to ``manager`` (call under its meta lock)."""
    try:
        op = record["op"]
        data = record["data"]
    except (TypeError, KeyError):
        raise JournalCorruptError(f"malformed journal record: {record!r}") from None
    applier = _APPLIERS.get(op)
    if applier is None:
        raise JournalCorruptError(f"unknown journal op: {op!r}")
    applier(manager, data)
