"""Manager durability: write-ahead journal, snapshots and crash recovery.

The metadata manager keeps the pool's only copy of the namespace, version
chains and chunk-maps in memory; this package makes that state survive a
manager crash.  Three pieces cooperate:

* :mod:`journal` — an append-only, CRC-framed record log with a configurable
  fsync policy.  Every mutating manager operation appends one record.
* :mod:`snapshot` — full-state snapshots that compact the journal: the codec
  turns a live manager into a plain dict and back.
* :mod:`recovery` — replays journal records onto a restored snapshot,
  tolerating a torn tail record (the crash may have interrupted an append).

:class:`ManagerPersistence` owns the on-disk layout (``snapshot-<lsn>.json``
plus ``journal-<lsn>.wal`` segments) and is the only object the manager talks
to.  Chunk *data* is never journaled — placements lost between the last
commit record and the crash are rebuilt by soft-state reconciliation when
benefactors re-advertise their inventory (see
:meth:`MetadataManager.reconcile_inventory`).
"""

from repro.manager.persistence.journal import (
    FSYNC_ALWAYS,
    FSYNC_COMMIT,
    FSYNC_NEVER,
    JournalWriter,
    read_journal_records,
)
from repro.manager.persistence.recovery import RecoveryReport, apply_record
from repro.manager.persistence.snapshot import (
    encode_manager_state,
    restore_manager_state,
)
from repro.manager.persistence.store import ManagerPersistence

__all__ = [
    "FSYNC_ALWAYS",
    "FSYNC_COMMIT",
    "FSYNC_NEVER",
    "JournalWriter",
    "ManagerPersistence",
    "RecoveryReport",
    "apply_record",
    "encode_manager_state",
    "read_journal_records",
    "restore_manager_state",
]
