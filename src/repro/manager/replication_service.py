"""Background replication service.

Replication is implemented as a background task initiated by the manager
(section IV.A): for each committed dataset version whose chunks sit below the
target replication level, the service builds a *shadow chunk-map* — a plan
assigning new benefactors to host additional replicas — sends it to the
source benefactors which copy the chunks directly to the targets, and commits
the shadow map into the primary chunk-map once the copies succeed.

New-file creation has priority over replication; the service therefore
defers its work while write sessions are active unless explicitly told not
to (``yield_to_writers=False``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.chunk_map import ChunkMap, ShadowChunkMap
from repro.core.replication import ReplicationState, ReplicationTask
from repro.core.striping import StripingPolicy
from repro.exceptions import EndpointUnreachableError, NoBenefactorsAvailableError, StdchkError
from repro.manager.manager import MetadataManager
from repro.transport.base import Transport


class ReplicationService:
    """Drives background replication for one manager.

    The service is *tick driven*: each :meth:`run_once` call performs a full
    scan-plan-copy-commit cycle.  Deployments that want continuous operation
    call it from a thread or scheduler; tests and benchmarks call it directly
    for determinism.
    """

    def __init__(
        self,
        manager: MetadataManager,
        transport: Transport,
        striping: Optional[StripingPolicy] = None,
        yield_to_writers: bool = True,
        max_copies_per_run: int = 10_000,
    ) -> None:
        self.manager = manager
        self.transport = transport
        self.striping = striping if striping is not None else manager.striping
        self.yield_to_writers = yield_to_writers
        self.max_copies_per_run = max_copies_per_run
        #: History of completed replication rounds (for tests/benchmarks).
        self.history: List[ReplicationState] = []

    # -- planning ------------------------------------------------------------
    def plan_for_version(self, dataset_id: str, version_number: int,
                         chunk_map: ChunkMap, target_level: int) -> ShadowChunkMap:
        """Build the shadow chunk-map for one under-replicated version."""
        shadow = ShadowChunkMap(dataset_id=dataset_id, version=version_number)
        views = self.manager.registry.online_views()
        for placement in chunk_map.under_replicated(target_level):
            missing = target_level - placement.replica_count
            if missing <= 0 or not placement.benefactors:
                continue
            try:
                allocation = self.striping.select(
                    views,
                    missing,
                    exclude=set(placement.benefactors),
                    required_space=placement.ref.length * missing,
                )
            except NoBenefactorsAvailableError:
                continue
            shadow.assign(placement.ref.chunk_id, list(allocation))
        return shadow

    # -- execution -------------------------------------------------------------
    def _execute_shadow(self, shadow: ShadowChunkMap, chunk_map: ChunkMap,
                        state: ReplicationState) -> None:
        """Copy chunks according to ``shadow`` and merge successful copies."""
        copies_done = 0
        for chunk_id, targets in shadow.assignments.items():
            placements = chunk_map.placements_for(chunk_id)
            if not placements:
                continue
            sources = placements[0].benefactors
            if not sources:
                continue
            source_id = sources[0]
            try:
                source_address = self.manager.registry.address_of(source_id)
            except StdchkError:
                continue
            for target_id in targets:
                if copies_done >= self.max_copies_per_run:
                    return
                task = ReplicationTask(
                    chunk_id=chunk_id,
                    source=source_id,
                    target=target_id,
                    dataset_id=shadow.dataset_id,
                    version=shadow.version,
                )
                state.tasks.append(task)
                try:
                    target_address = self.manager.registry.address_of(target_id)
                    task.mark_in_flight()
                    result = self.transport.call(
                        source_address,
                        "replicate_to",
                        chunk_ids=[chunk_id],
                        target_address=target_address,
                    )
                except (EndpointUnreachableError, StdchkError) as exc:
                    task.mark_failed(str(exc))
                    self.manager.registry.mark_offline(source_id)
                    continue
                if chunk_id in result.get("copied", []):
                    task.mark_done()
                    for placement in placements:
                        placement.add_replica(target_id)
                    copies_done += 1
                else:
                    task.mark_failed("source no longer holds the chunk")

    def run_once(self) -> List[ReplicationState]:
        """Scan every dataset and bring under-replicated versions up to level.

        Returns one :class:`ReplicationState` per version that needed work.
        """
        if not self.manager.online:
            return []
        if self.yield_to_writers and self.manager.active_sessions():
            # Creation of new files has priority over replication.
            return []
        states: List[ReplicationState] = []
        for dataset in self.manager.datasets():
            target = self.manager.replication_target_for(dataset.dataset_id)
            if target <= 1:
                continue
            for version in dataset.versions:
                under = version.chunk_map.under_replicated(target)
                if not under:
                    continue
                shadow = self.plan_for_version(
                    dataset.dataset_id, version.version, version.chunk_map, target
                )
                if shadow.is_empty:
                    continue
                state = ReplicationState(
                    dataset_id=dataset.dataset_id,
                    version=version.version,
                    target_level=target,
                    shadow=shadow,
                )
                self._execute_shadow(shadow, version.chunk_map, state)
                shadow.mark_committed()
                states.append(state)
        self.history.extend(states)
        return states

    def run_until_replicated(self, max_rounds: int = 10) -> int:
        """Run repeatedly until no dataset is under-replicated (or give up).

        Returns the number of rounds executed.  Useful after failure
        injection in tests and in the durability example.
        """
        rounds = 0
        for _ in range(max_rounds):
            states = self.run_once()
            rounds += 1
            if not states:
                break
        return rounds

    # -- reporting ------------------------------------------------------------
    def pending_work(self) -> Dict[str, int]:
        """Number of under-replicated placements per dataset (diagnostics)."""
        pending: Dict[str, int] = {}
        for dataset in self.manager.datasets():
            target = self.manager.replication_target_for(dataset.dataset_id)
            count = 0
            for version in dataset.versions:
                count += len(version.chunk_map.under_replicated(target))
            if count:
                pending[dataset.dataset_id] = count
        return pending
