"""Standby metadata managers: apply shipped records, promote on demand.

A :class:`StandbyManager` is a full :class:`MetadataManager` that starts in
the ``"standby"`` role: it applies the primary's shipped journal records
(the same logical redo records crash recovery replays) but refuses every
normal client/benefactor RPC with :class:`NotPrimaryError`, so a client that
dials the wrong node re-resolves instead of mutating a stale replica.

:meth:`promote` flips the role to ``"primary"`` at the last applied LSN —
optionally attaching a fresh journal of its own, seeded with a snapshot so
the promoted manager is immediately crash-durable again.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.core.namespace import Namespace
from repro.core.reservation import ReservationTable
from repro.exceptions import ManagerError, NotPrimaryError, StaleEpochError
from repro.manager.manager import MetadataManager
from repro.manager.persistence import (
    ManagerPersistence,
    apply_record,
    encode_manager_state,
    restore_manager_state,
)
from repro.manager.registry import BenefactorRegistry


class StandbyManager(MetadataManager):
    """A hot standby replica of the primary metadata manager."""

    def __init__(self, transport, config=None, clock=None,
                 manager_id: str = "standby", **kwargs) -> None:
        if config is not None and config.journal_dir is not None:
            # The standby must not replay or append the *primary's* journal;
            # it gets a journal of its own at promotion time.
            config = config.with_overrides(journal_dir=None)
        super().__init__(transport, config=config, clock=clock,
                         manager_id=manager_id, **kwargs)
        self.role = "standby"
        #: Highest primary LSN whose record has been applied here.
        self.applied_lsn = 0
        self._applied_counter = self.obs.counter(
            "standby_records_applied_total",
            "Shipped journal records applied by this standby.",
        )
        self._snapshot_counter = self.obs.counter(
            "standby_snapshots_installed_total",
            "Full snapshot transfers installed by this standby.",
        )
        self._promotion_histogram = self.obs.histogram(
            "manager_promotion_seconds",
            "Time to flip this standby into a serving primary.",
        )

    # ------------------------------------------------------------------ guards
    def _require_online(self) -> None:
        if self.role == "standby":
            raise NotPrimaryError(
                f"manager {self.manager_id} is a standby replica; "
                "re-resolve the active primary and retry"
            )
        super()._require_online()

    def manager_status(self) -> Dict[str, object]:
        status = super().manager_status()
        status["applied_lsn"] = self.applied_lsn
        # A standby's replication position is its best LSN claim; a promoted
        # standby keeps it until its own journal overtakes.
        status["last_lsn"] = max(int(status["last_lsn"]), self.applied_lsn)
        return status

    def _check_replication_epoch(self, epoch: Optional[int]) -> None:
        """Fence replication RPCs from deposed primaries (call under lock).

        ``epoch=None`` (a pre-epoch caller) is accepted for compatibility;
        otherwise a caller behind this node's epoch is rejected with
        :class:`StaleEpochError` so it self-demotes, and a caller ahead of
        it moves this node's epoch forward.
        """
        if epoch is None:
            return
        if int(epoch) < self.epoch:
            hint = self.address if self.role == "primary" else None
            raise StaleEpochError(
                f"manager {self.manager_id} is at epoch {self.epoch}; "
                f"rejecting replication from stale epoch {epoch}",
                epoch=self.epoch, primary_address=hint,
            )
        self.epoch = max(self.epoch, int(epoch))

    # ------------------------------------------------------------- replication
    def replicate_records(self, records: List[Dict[str, object]],
                          from_lsn: int,
                          epoch: Optional[int] = None) -> Dict[str, object]:
        """Apply a batch of shipped redo records (primary-facing RPC).

        Records already applied (``lsn <= applied_lsn``) are skipped, so the
        primary may re-send overlapping suffixes safely; a gap (``from_lsn``
        ahead of the next expected record) asks for a snapshot resync
        instead of applying out of order.
        """
        with self._meta_lock:
            self._check_replication_epoch(epoch)
            if self.role != "standby":
                raise ManagerError(
                    f"manager {self.manager_id} was promoted; "
                    "no longer accepting shipped records"
                )
            if from_lsn > self.applied_lsn + 1:
                return {"applied_lsn": self.applied_lsn, "resync": True}
            self._replaying = True
            try:
                lsn = int(from_lsn)
                for record in records:
                    if lsn > self.applied_lsn:
                        apply_record(self, record)
                        self.applied_lsn = lsn
                        self._applied_counter.inc()
                    lsn += 1
            finally:
                self._replaying = False
            return {"applied_lsn": self.applied_lsn, "resync": False}

    def install_snapshot(self, state: Dict[str, object],
                         lsn: int,
                         epoch: Optional[int] = None) -> Dict[str, object]:
        """Replace this standby's state with a full snapshot at ``lsn``."""
        with self._meta_lock:
            self._check_replication_epoch(epoch)
            if self.role != "standby":
                raise ManagerError(
                    f"manager {self.manager_id} was promoted; "
                    "refusing snapshot install"
                )
            self._reset_state()
            self._replaying = True
            try:
                restore_manager_state(self, state)
            finally:
                self._replaying = False
            self.applied_lsn = int(lsn)
            self._snapshot_counter.inc()
            return {"applied_lsn": self.applied_lsn}

    def _reset_state(self) -> None:
        """Drop all metadata (snapshot install is a replace, not a merge)."""
        self.namespace = Namespace()
        self.registry = BenefactorRegistry(
            heartbeat_timeout=self.config.heartbeat_timeout
        )
        self.reservations = ReservationTable(
            default_lease=self.config.reservation_lease
        )
        self._datasets = {}
        self._replication_targets = {}
        self._sessions = {}
        self._session_seq = 0
        self._dataset_seq = 0
        self._gc_seen = {}
        self._corrupt = {}

    # --------------------------------------------------------------- promotion
    def promote(self, journal_dir: Optional[str] = None) -> Dict[str, object]:
        """Take over the primary role at the last applied LSN.

        Benefactor liveness is soft state — the snapshot/stream carries
        membership, and heartbeats against the new primary refresh liveness
        within one interval.  With ``journal_dir`` (a fresh directory) the
        promoted manager seeds a new journal with a snapshot of its current
        state, so it is immediately crash-durable again.
        """
        start = time.perf_counter()
        with self._meta_lock:
            if self.role == "primary":
                return {
                    "promoted": False,
                    "applied_lsn": self.applied_lsn,
                    "epoch": self.epoch,
                }
            self.role = "primary"
            self.online = True
            self.recovering = False
            # Take over under a strictly newer epoch: replication RPCs the
            # deposed primary still sends now carry a stale epoch and bounce
            # with StaleEpochError, which self-demotes it.
            self.epoch += 1
            if journal_dir is not None and self._persistence is None:
                persistence = ManagerPersistence(
                    journal_dir,
                    fsync_policy=self.config.journal_fsync_policy,
                    snapshot_every_n_records=self.config.snapshot_every_n_records,
                )
                persistence.attach_metrics(self.obs)
                # The seed snapshot records the bumped epoch; the explicit
                # journal record covers replicas streaming from this journal.
                persistence.take_snapshot(encode_manager_state(self))
                persistence.append("epoch", {"epoch": self.epoch}, durable=True)
                self._persistence = persistence
                self._recovered = True
        duration = time.perf_counter() - start
        self._promotion_histogram.observe(duration)
        return {
            "promoted": True,
            "applied_lsn": self.applied_lsn,
            "epoch": self.epoch,
            "duration": duration,
        }
