"""Manager replication: journal log shipping to hot standby managers.

The primary manager already produces a CRC-framed write-ahead journal of
logical redo records (:mod:`repro.manager.persistence`); this package streams
those same records to one or more standby managers over the ordinary RPC
transports, so a standby can be promoted when the primary dies:

* :class:`LogShipper` — attached to the primary via
  :meth:`MetadataManager.attach_shipper`; buffers records, tracks each
  standby's acknowledged LSN, flushes on durability points (or every
  ``ship_batch_records``), and falls back to a full snapshot transfer when a
  standby lags beyond the retained window.
* :class:`StandbyManager` — a :class:`MetadataManager` that refuses normal
  client/benefactor RPCs with :class:`~repro.exceptions.NotPrimaryError`
  while applying shipped records, and whose :meth:`~StandbyManager.promote`
  flips it into a serving primary at the last applied LSN — under a bumped
  epoch, so the deposed primary's stale stream is fenced off.
* :class:`FailoverSupervisor` — subscribes to the cluster health monitor and
  promotes the freshest standby automatically when the primary is declared
  dead (flap-damped, deterministic standby selection).

Clients pair this with :mod:`repro.client.failover` (backoff + primary
re-discovery) so in-flight operations survive a primary death transparently.
"""

from repro.manager.replication.shipper import LogShipper
from repro.manager.replication.standby import StandbyManager
from repro.manager.replication.supervisor import FailoverSupervisor

__all__ = ["FailoverSupervisor", "LogShipper", "StandbyManager"]
