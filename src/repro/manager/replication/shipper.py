"""Streaming journal log shipping from a primary manager to its standbys.

The shipper sits behind :meth:`MetadataManager._journal`: every logical redo
record the primary appends (or would append — shipping also works for
journal-less in-memory managers) is offered here under the primary's meta
lock, so the shipped stream order always matches the application order.

Per-standby state is an acknowledged LSN.  Records are buffered in a bounded
window; a flush sends each standby the suffix it has not acknowledged yet via
``replicate_records``.  When a standby lags beyond the retained window (or
reports a gap), the shipper falls back to a full snapshot transfer
(``install_snapshot``) — the same codec the on-disk snapshots use.

Failure semantics are asymmetric by design:

* A failure *toward a standby* (unreachable, mid-promotion, …) must not take
  the primary down — the standby is marked unhealthy, a counter ticks, and
  the primary keeps serving.  The standby catches up via snapshot resync when
  it returns.
* A failure *inside the shipper itself* (including the test-only
  :attr:`ship_hook`) propagates to ``_journal``'s fail-stop path, exactly
  like a journal append error.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.exceptions import (
    NotPrimaryError,
    QuorumNotReachedError,
    StaleEpochError,
    StdchkError,
)
from repro.manager.persistence import encode_manager_state
from repro.obs import component_logger

#: Records retained for catch-up shipping before a lagging standby is forced
#: into a snapshot resync.
DEFAULT_RETAIN_RECORDS = 1024


class StandbyLink:
    """Shipping state for one standby endpoint."""

    __slots__ = ("address", "acked_lsn", "healthy", "resyncs", "failures")

    def __init__(self, address: str, acked_lsn: int = 0) -> None:
        self.address = address
        self.acked_lsn = acked_lsn
        self.healthy = True
        self.resyncs = 0
        self.failures = 0


class LogShipper:
    """Ship the primary's journal record stream to standby managers."""

    def __init__(self, manager, transport=None,
                 retain_records: int = DEFAULT_RETAIN_RECORDS) -> None:
        self.manager = manager
        self.transport = transport if transport is not None else manager.transport
        self.retain_records = retain_records
        #: ``(lsn, record)`` suffix of the stream, bounded: standbys further
        #: behind than this window resync from a snapshot instead.
        self._window: Deque[Tuple[int, Dict[str, object]]] = deque()
        self._standbys: Dict[str, StandbyLink] = {}
        #: Records buffered since the last flush (batching knob).
        self._pending = 0
        #: Highest LSN offered; mirrors the journal LSN when one exists, and
        #: is self-assigned for journal-less managers.
        self.last_lsn = 0
        self._lock = threading.RLock()
        #: Test/fault-injection hook called as ``hook(lsn, record)`` after
        #: each record is shipped; exceptions propagate (fail-stop), which is
        #: how the crash-point sweep kills the primary at record boundaries.
        self.ship_hook = None
        self._log = component_logger("shipper", manager.manager_id)

        obs = manager.obs
        self._lag_gauge = obs.gauge(
            "manager_replication_lag_records",
            "Records the primary has shipped but this standby has not acked.",
            labelnames=("standby",),
        )
        self._ships = obs.counter(
            "manager_replication_ships_total",
            "replicate_records batches sent to standbys.",
        )
        self._records_shipped = obs.counter(
            "manager_replication_records_total",
            "Journal records acknowledged by standbys.",
        )
        self._resyncs = obs.counter(
            "manager_replication_resyncs_total",
            "Full snapshot transfers to lagging standbys.",
        )
        self._ship_failures = obs.counter(
            "manager_replication_ship_failures_total",
            "Failed ship attempts, per standby.",
            labelnames=("standby",),
        )
        self._ship_window = obs.windowed_histogram(
            "manager_replication_ship_seconds_window",
            "Recent (sliding-window) per-standby ship latency.",
            labelnames=("standby",),
        )
        self._quorum_window = obs.windowed_histogram(
            "manager_quorum_ack_seconds_window",
            "Recent time to collect the standby-ack quorum per record.",
        )
        self._quorum_degrades = obs.counter(
            "manager_quorum_degrades_total",
            "Records acknowledged without quorum (quorum_degrade=async).",
        )
        self._quorum_failures = obs.counter(
            "manager_quorum_failures_total",
            "Records refused a client ack because quorum was unreachable.",
        )

    # ------------------------------------------------------------- membership
    def standbys(self) -> List[str]:
        with self._lock:
            return list(self._standbys)

    def acked_lsn(self, address: str) -> int:
        with self._lock:
            return self._standbys[address].acked_lsn

    def add_standby(self, address: str) -> None:
        """Enroll ``address`` and bootstrap it with a full snapshot.

        The snapshot is encoded under the primary's meta lock so it is a
        consistent cut at :attr:`last_lsn`; the standby starts exactly there
        and streams forward.
        """
        with self.manager._meta_lock, self._lock:
            if address in self._standbys:
                return
            link = StandbyLink(address)
            self._install_snapshot(link)
            self._standbys[address] = link

    def remove_standby(self, address: str) -> None:
        with self._lock:
            self._standbys.pop(address, None)

    # --------------------------------------------------------------- shipping
    def offer(self, record: Dict[str, object], lsn: Optional[int] = None,
              durable: bool = False) -> int:
        """Buffer one redo record; flush on durability points or a full batch.

        Called by ``MetadataManager._journal`` under the meta lock.  Returns
        the record's LSN.
        """
        with self._lock:
            if lsn is None:
                lsn = self.last_lsn + 1
            self.last_lsn = max(self.last_lsn, lsn)
            self._window.append((lsn, record))
            while len(self._window) > self.retain_records:
                self._window.popleft()
            self._pending += 1
            batch = getattr(self.manager.config, "ship_batch_records", 1)
            quorum = getattr(self.manager.config, "replication_quorum", 0)
            if durable or self._pending >= batch or quorum > 0:
                # Quorum mode ships synchronously: a record cannot collect
                # standby acks while sitting in the batching buffer.
                self.flush()
            if quorum > 0:
                self._await_quorum(lsn, quorum)
            if self.ship_hook is not None:
                # Deliberately outside the per-standby error swallowing:
                # hook errors are fail-stop, like journal append errors.
                # Fired *after* the quorum wait, so a hook-injected crash
                # models losing the primary between quorum-ack and
                # client-ack.
                self.ship_hook(lsn, record)
            return lsn

    def _acks_for(self, lsn: int) -> int:
        return sum(1 for link in self._standbys.values() if link.acked_lsn >= lsn)

    def _await_quorum(self, lsn: int, quorum: int) -> None:
        """Block until ``quorum`` standbys acked ``lsn`` or the timeout hits.

        Runs under the shipper lock (and the primary's meta lock): shipping
        is synchronous RPC work, so retrying :meth:`flush` here is what makes
        progress — there is no background acker to wait on.  On timeout the
        configured degrade policy decides between refusing the client ack
        (``"fail"``) and falling back to async shipping with a breadcrumb
        (``"async"``).
        """
        config = self.manager.config
        started = time.perf_counter()
        deadline = time.monotonic() + float(getattr(config, "quorum_timeout", 2.0))
        while True:
            acked = self._acks_for(lsn)
            if acked >= quorum:
                self._quorum_window.observe(time.perf_counter() - started)
                return
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            time.sleep(min(0.01, remaining))
            self.flush()
        acked = self._acks_for(lsn)
        degrade = getattr(config, "quorum_degrade", "fail")
        if degrade == "async":
            self._quorum_degrades.inc()
            self._log.warning(
                "quorum unreachable for lsn %d (%d/%d acks); "
                "degrading to async shipping", lsn, acked, quorum,
            )
            return
        self._quorum_failures.inc()
        raise QuorumNotReachedError(
            f"lsn {lsn} collected {acked}/{quorum} standby acks "
            f"within {getattr(config, 'quorum_timeout', 2.0)}s",
            acked=acked, required=quorum,
        )

    def flush(self) -> None:
        """Ship every standby the stream suffix it has not acknowledged."""
        with self._lock:
            self._pending = 0
            for link in self._standbys.values():
                started = time.perf_counter()
                try:
                    self._ship_to(link)
                    link.healthy = True
                    self._ship_window.labels(standby=link.address).observe(
                        time.perf_counter() - started
                    )
                except StaleEpochError as exc:
                    # A standby under a newer primary fenced us: self-demote
                    # instead of split-braining, and surface the hint.
                    self.manager.fence(exc.epoch, exc.primary_address)
                    raise NotPrimaryError(
                        f"manager {self.manager.manager_id} deposed by "
                        f"epoch {exc.epoch}",
                        primary_address=exc.primary_address,
                        epoch=exc.epoch,
                    ) from exc
                except StdchkError:
                    # Standby-side trouble (unreachable, promoted, …) must
                    # not take the primary down; it will resync on return.
                    link.healthy = False
                    link.failures += 1
                    self._ship_failures.labels(standby=link.address).inc()
                self._lag_gauge.labels(standby=link.address).set(
                    max(0, self.last_lsn - link.acked_lsn)
                )

    def _ship_to(self, link: StandbyLink) -> None:
        if link.acked_lsn >= self.last_lsn:
            return
        suffix = [(lsn, rec) for lsn, rec in self._window if lsn > link.acked_lsn]
        if not suffix or suffix[0][0] != link.acked_lsn + 1:
            # The standby is behind the retained window (or the window has a
            # gap from a restart): stream catch-up is impossible, resync.
            self._install_snapshot(link)
            return
        answer = self.transport.call(
            link.address, "replicate_records",
            records=[rec for _lsn, rec in suffix],
            from_lsn=suffix[0][0],
            epoch=self.manager.epoch,
        )
        self._ships.inc()
        if answer.get("resync"):
            self._install_snapshot(link)
            return
        applied = int(answer.get("applied_lsn", link.acked_lsn))
        self._records_shipped.inc(max(0, applied - link.acked_lsn))
        link.acked_lsn = max(link.acked_lsn, applied)

    def _install_snapshot(self, link: StandbyLink) -> None:
        """Full-state transfer: the snapshot codec over the wire."""
        state = encode_manager_state(self.manager)
        self.transport.call(
            link.address, "install_snapshot",
            state=state, lsn=self.last_lsn,
            epoch=self.manager.epoch,
        )
        link.acked_lsn = self.last_lsn
        link.resyncs += 1
        self._resyncs.inc()
