"""Automatic manager failover: promote the freshest standby when the primary dies.

The :class:`FailoverSupervisor` closes the loop the pieces around it left
open: the :class:`~repro.obs.ClusterHealthMonitor` *detects* a dead primary,
the pool/deployment helpers *can* promote a standby, and epoch fencing makes
a promotion safe against the deposed primary reawakening — but until now a
human had to connect detection to promotion.  The supervisor subscribes to
the monitor's ``on_transition`` stream and, when the current primary is
declared dead:

1. probes every enrolled standby's ``manager_status`` (bounded per-probe
   timeout, so one black-holed standby cannot stall the failover),
2. selects the standby with the highest applied LSN (deterministic
   lexicographic tie-break on the standby id),
3. promotes it through the deployment helper, which bumps the epoch, fences
   the old primary, re-points the background services and re-registers the
   benefactors.

A flap-damping cooldown suppresses back-to-back promotions: a freshly
promoted primary that flickers through the detector does not trigger a
cascade of takeovers.  Transitions about nodes other than the *current*
primary (a dead standby, or a stale event about an already-replaced primary
after a supervisor restart) are ignored.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from repro.exceptions import StdchkError
from repro.obs import component_logger


class FailoverSupervisor:
    """Drive unattended primary failover for a pool or TCP deployment.

    ``deployment`` is duck-typed: it must expose ``manager`` (current
    primary), ``transport``, ``standby_endpoints()`` and
    ``promote_standby(standby_id)`` — both :class:`~repro.pool.StdchkPool`
    and :class:`~repro.pool.TcpDeployment` qualify.
    """

    def __init__(self, deployment, probe_timeout: Optional[float] = None,
                 cooldown: Optional[float] = None,
                 clock=time.monotonic) -> None:
        config = deployment.config
        self.deployment = deployment
        self.probe_timeout = (
            probe_timeout if probe_timeout is not None
            else getattr(config, "failover_probe_timeout", 1.0)
        )
        self.cooldown = (
            cooldown if cooldown is not None
            else getattr(config, "failover_cooldown", 5.0)
        )
        self._clock = clock
        self._lock = threading.Lock()
        self._last_promotion: Optional[float] = None
        self.promotions = 0
        self.suppressed = 0
        self.failures = 0
        #: Audit trail of every decision (promoted / cooldown / stale / …).
        self.events: List[Dict[str, object]] = []
        self._log = component_logger("failover-supervisor")

    # ------------------------------------------------------------------ wiring
    def attach(self, monitor):
        """Chain onto ``monitor.on_transition`` (keeps any existing callback)."""
        previous = monitor.on_transition

        def chained(transition):
            if previous is not None:
                previous(transition)
            self.handle_transition(transition)

        monitor.on_transition = chained
        return monitor

    def handle_transition(self, transition) -> Optional[Dict[str, object]]:
        """React to one health transition; promotes on a dead primary."""
        if transition.kind != "manager" or transition.new_state != "dead":
            return None
        return self.maybe_promote(transition.node_id)

    # --------------------------------------------------------------- promotion
    def _note(self, action: str, **detail: object) -> None:
        event = {"action": action, "at": time.time()}
        event.update(detail)
        self.events.append(event)

    def maybe_promote(self, dead_node_id: str) -> Optional[Dict[str, object]]:
        """Promote the best standby if ``dead_node_id`` is the live primary.

        Returns a description of the promotion, or ``None`` when the event
        was suppressed (stale node, cooldown) or no standby was promotable.
        Serialized: concurrent transitions (several monitor probes racing)
        resolve to exactly one promotion.
        """
        with self._lock:
            current = self.deployment.manager.manager_id
            if dead_node_id != current:
                # A dead standby, or an event about a primary that a prior
                # promotion (possibly by a previous supervisor incarnation)
                # already replaced.
                self.suppressed += 1
                self._note("stale", node=dead_node_id, primary=current)
                return None
            now = self._clock()
            if (self._last_promotion is not None
                    and now - self._last_promotion < self.cooldown):
                self.suppressed += 1
                self._note("cooldown", node=dead_node_id,
                           since_last=now - self._last_promotion)
                self._log.warning(
                    "primary %s dead %.2fs after the last promotion; "
                    "flap-damping cooldown (%.1fs) suppresses takeover",
                    dead_node_id, now - self._last_promotion, self.cooldown,
                )
                return None
            best = self._select_standby()
            if best is None:
                self.failures += 1
                self._note("no-standby", node=dead_node_id)
                self._log.error(
                    "primary %s dead but no promotable standby answered",
                    dead_node_id,
                )
                return None
            promoted = self.deployment.promote_standby(best)
            self._last_promotion = self._clock()
            self.promotions += 1
            self._note("promoted", node=dead_node_id, standby=best,
                       epoch=promoted.epoch, applied_lsn=promoted.applied_lsn)
            self._log.info(
                "promoted standby %s to primary (epoch %d, lsn %d) after "
                "%s died", best, promoted.epoch, promoted.applied_lsn,
                dead_node_id,
            )
            return {
                "standby_id": best,
                "epoch": promoted.epoch,
                "applied_lsn": promoted.applied_lsn,
            }

    def _select_standby(self) -> Optional[str]:
        """Freshest reachable standby: highest applied LSN, id tie-break."""
        transport = self.deployment.transport
        best_id: Optional[str] = None
        best_lsn = -1
        # Sorted iteration + strict ``>`` makes the tie-break deterministic:
        # equal LSNs resolve to the lexicographically smallest standby id.
        for standby_id, address in sorted(self.deployment.standby_endpoints().items()):
            try:
                if self.probe_timeout and hasattr(transport, "probe"):
                    status = transport.probe(address, "manager_status",
                                             self.probe_timeout)
                else:
                    status = transport.call(address, "manager_status")
            except StdchkError:
                continue
            if status.get("role") != "standby":
                continue
            lsn = int(status.get("applied_lsn") or status.get("last_lsn") or 0)
            if lsn > best_lsn:
                best_id, best_lsn = standby_id, lsn
        return best_id
