"""Soft-state registry of benefactor nodes.

Benefactors publish their status (online/offline, free space) through
periodic heartbeats.  The registry expires nodes whose heartbeats stop — no
explicit deregistration is required, which is exactly what makes scavenged
storage practical on volatile desktops.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.striping import BenefactorView
from repro.exceptions import UnknownBenefactorError


@dataclass
class BenefactorRecord:
    """Manager-side view of one registered benefactor."""

    benefactor_id: str
    address: str
    free_space: int = 0
    used_space: int = 0
    chunk_count: int = 0
    last_heartbeat: float = 0.0
    registered_at: float = 0.0
    online: bool = True
    #: Heartbeats received; useful to assert soft-state behaviour in tests.
    heartbeats: int = 0
    #: Merkle-style inventory digest carried by the latest heartbeat.
    inventory_digest: str = ""
    #: Digest of the inventory this benefactor last reconciled in full;
    #: a heartbeat whose digest differs triggers re-advertisement.
    reconciled_digest: str = ""
    #: Set when the manager has repair hints waiting for this benefactor
    #: (e.g. a corruption report shrank a placement it holds); the next
    #: heartbeat is asked to reconcile so the hints are handed off.
    repair_pending: bool = False

    def view(self) -> BenefactorView:
        """Snapshot consumed by the striping policy."""
        return BenefactorView(
            benefactor_id=self.benefactor_id,
            free_space=self.free_space,
            online=self.online,
        )


class BenefactorRegistry:
    """Tracks every benefactor that ever registered, with liveness state.

    All accessors take an internal lock: heartbeats, client failure reports
    and stripe allocations arrive concurrently once the data path pushes
    chunks in parallel.
    """

    def __init__(self, heartbeat_timeout: float = 30.0) -> None:
        self.heartbeat_timeout = heartbeat_timeout
        self._records: Dict[str, BenefactorRecord] = {}
        self._lock = threading.RLock()

    # -- registration ---------------------------------------------------------
    def register(self, benefactor_id: str, address: str, free_space: int,
                 used_space: int, chunk_count: int, now: float) -> BenefactorRecord:
        """Create or refresh a benefactor record (registration is idempotent)."""
        with self._lock:
            record = self._records.get(benefactor_id)
            if record is None:
                record = BenefactorRecord(
                    benefactor_id=benefactor_id,
                    address=address,
                    registered_at=now,
                )
                self._records[benefactor_id] = record
            record.address = address
            record.free_space = free_space
            record.used_space = used_space
            record.chunk_count = chunk_count
            record.last_heartbeat = now
            record.online = True
            record.heartbeats += 1
            return record

    def heartbeat(self, benefactor_id: str, free_space: int, used_space: int,
                  chunk_count: int, now: float,
                  inventory_digest: str = "") -> BenefactorRecord:
        """Refresh liveness and space for an already-registered benefactor."""
        with self._lock:
            record = self.get(benefactor_id)
            record.free_space = free_space
            record.used_space = used_space
            record.chunk_count = chunk_count
            record.last_heartbeat = now
            record.online = True
            record.heartbeats += 1
            if inventory_digest:
                record.inventory_digest = inventory_digest
            return record

    def note_reconciled(self, benefactor_id: str, digest: str) -> None:
        """Record that ``benefactor_id`` reconciled an inventory with ``digest``.

        The digest is computed by the *manager* from the reported inventory,
        so the registry never trusts a benefactor's self-reported summary to
        match the ids it actually sent.  Clears ``repair_pending``: the
        reconcile answer carried whatever hints were waiting.
        """
        with self._lock:
            record = self._records.get(benefactor_id)
            if record is not None:
                record.reconciled_digest = digest
                record.inventory_digest = digest
                record.repair_pending = False

    def set_repair_pending(self, benefactor_id: str) -> None:
        with self._lock:
            record = self._records.get(benefactor_id)
            if record is not None:
                record.repair_pending = True

    def needs_reconcile(self, benefactor_id: str, inventory_digest: str) -> bool:
        """Should this benefactor re-advertise its full inventory?"""
        with self._lock:
            record = self._records.get(benefactor_id)
            if record is None:
                return True
            if record.repair_pending:
                return True
            if not inventory_digest:
                # A digest-less heartbeat (legacy caller) proves nothing
                # about the inventory; do not force a re-advertisement.
                return False
            return inventory_digest != record.reconciled_digest

    def restore(self, benefactor_id: str, address: str,
                registered_at: float = 0.0) -> BenefactorRecord:
        """Recreate a benefactor record from durable state (recovery path).

        Liveness is soft state, so the restored node starts *offline*: it
        becomes eligible for stripes again only once it re-registers or
        heartbeats, but its address is immediately resolvable for reads.
        """
        with self._lock:
            record = self._records.get(benefactor_id)
            if record is None:
                record = BenefactorRecord(
                    benefactor_id=benefactor_id,
                    address=address,
                    registered_at=registered_at,
                    online=False,
                )
                self._records[benefactor_id] = record
            else:
                # A later journal record may carry a newer address.
                record.address = address
            return record

    def known_address(self, benefactor_id: str) -> Optional[str]:
        """Address of ``benefactor_id`` if it ever registered, else ``None``."""
        with self._lock:
            record = self._records.get(benefactor_id)
            return record.address if record is not None else None

    def mark_offline(self, benefactor_id: str) -> None:
        """Explicitly mark a benefactor offline (e.g. a failed data call)."""
        with self._lock:
            record = self._records.get(benefactor_id)
            if record is not None:
                record.online = False

    def expire(self, now: float) -> List[str]:
        """Mark benefactors with stale heartbeats offline; return their ids."""
        expired: List[str] = []
        with self._lock:
            for record in self._records.values():
                if record.online and (now - record.last_heartbeat) >= self.heartbeat_timeout:
                    record.online = False
                    expired.append(record.benefactor_id)
        return expired

    # -- queries -------------------------------------------------------------------
    def get(self, benefactor_id: str) -> BenefactorRecord:
        with self._lock:
            try:
                return self._records[benefactor_id]
            except KeyError:
                raise UnknownBenefactorError(
                    f"benefactor never registered: {benefactor_id}"
                ) from None

    def address_of(self, benefactor_id: str) -> str:
        return self.get(benefactor_id).address

    def known(self) -> List[BenefactorRecord]:
        with self._lock:
            return list(self._records.values())

    def online(self) -> List[BenefactorRecord]:
        with self._lock:
            return [r for r in self._records.values() if r.online]

    def online_views(self) -> List[BenefactorView]:
        return [r.view() for r in self.online()]

    def is_online(self, benefactor_id: str) -> bool:
        with self._lock:
            record = self._records.get(benefactor_id)
            return record is not None and record.online

    def total_free_space(self) -> int:
        return sum(r.free_space for r in self.online())

    def total_contributed_space(self) -> int:
        return sum(r.free_space + r.used_space for r in self.online())

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __contains__(self, benefactor_id: str) -> bool:
        with self._lock:
            return benefactor_id in self._records
