"""Global observability switch.

All hot-path recording (counter increments, histogram observations, span
creation, trace injection) consults a single module-level flag so that the
entire subsystem can be turned off for overhead-sensitive comparisons —
``bench_parallel_push`` gates the enabled/disabled delta at 5%.

The flag is process-global on purpose: a pool spans many in-process nodes
and the point of disabling observability is an apples-to-apples baseline,
not per-node opt-out.
"""

from __future__ import annotations

import threading

ENABLED: bool = True

_lock = threading.Lock()


def set_enabled(enabled: bool) -> bool:
    """Enable or disable all metric recording and tracing; returns the prior value."""
    global ENABLED
    with _lock:
        previous = ENABLED
        ENABLED = bool(enabled)
    return previous


def is_enabled() -> bool:
    """Whether observability recording is currently on."""
    return ENABLED
