"""Trace contexts, spans and the in-memory span store.

A trace is born when a client operation (``write_file``, ``read_file``, …)
opens a root span.  The active context is kept in a ``threading.local`` —
*not* a ``contextvars`` variable, because the client data paths hand work to
``ThreadPoolExecutor`` workers which would not inherit it; instead the
pusher/reader capture the context at construction and re-activate it inside
each worker task with :func:`use_context`.

Propagation across RPC boundaries rides inside the existing payload dict
under the reserved key :data:`TRACE_KEY` — no wire-format change for either
transport.  The client side of a transport injects the current context (and
wraps the call in an ``rpc:<method>`` span so unreachable endpoints are
error-annotated); ``Endpoint.dispatch`` pops the key before invoking the
handler and opens a server-side span stamped with the endpoint's component
and node id.  One checkpoint write therefore yields a linked span tree
client -> manager -> benefactors, all sharing one trace id.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.obs import runtime

#: Reserved RPC payload key carrying the wire form of a trace context.
TRACE_KEY = "__trace__"


def new_id() -> str:
    """A fresh 64-bit hex id for traces and spans."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """Immutable (trace id, span id, parent) triple identifying a position."""

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None

    def to_wire(self) -> Dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @staticmethod
    def from_wire(wire: object) -> Optional["TraceContext"]:
        if not isinstance(wire, dict):
            return None
        trace_id = wire.get("trace_id")
        span_id = wire.get("span_id")
        if not trace_id or not span_id:
            return None
        return TraceContext(trace_id=str(trace_id), span_id=str(span_id))


@dataclass
class Span:
    """One timed unit of work attributed to a component/node."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    component: str = ""
    node_id: str = ""
    start_time: float = 0.0
    duration: float = 0.0
    status: str = "ok"
    error: Optional[str] = None
    attributes: Dict[str, object] = field(default_factory=dict)

    @property
    def context(self) -> TraceContext:
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id,
                            parent_id=self.parent_id)

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "component": self.component,
            "node_id": self.node_id,
            "start_time": self.start_time,
            "duration": self.duration,
            "status": self.status,
            "error": self.error,
            "attributes": dict(self.attributes),
        }


class SpanStore:
    """Bounded, thread-safe in-memory sink for finished spans."""

    def __init__(self, max_spans: int = 8192):
        self._lock = threading.Lock()
        self._spans: deque = deque(maxlen=max_spans)

    def record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def traces(self) -> Dict[str, List[Span]]:
        """Finished spans grouped by trace id, in completion order."""
        grouped: Dict[str, List[Span]] = {}
        for span in self.spans():
            grouped.setdefault(span.trace_id, []).append(span)
        return grouped

    def tree(self, trace_id: str) -> List[dict]:
        """The span tree of one trace as nested dicts (roots first)."""
        spans = [s for s in self.spans() if s.trace_id == trace_id]
        nodes = {s.span_id: {**s.to_dict(), "children": []} for s in spans}
        roots: List[dict] = []
        for span in spans:
            node = nodes[span.span_id]
            parent = nodes.get(span.parent_id) if span.parent_id else None
            if parent is not None:
                parent["children"].append(node)
            else:
                roots.append(node)
        return roots

    def to_dicts(self) -> List[dict]:
        return [span.to_dict() for span in self.spans()]

    def dump_json(self, path: Optional[str] = None, indent: int = 2) -> str:
        """Serialize every stored span; optionally also write it to ``path``."""
        text = json.dumps({"spans": self.to_dicts()}, indent=indent,
                          sort_keys=True)
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
        return text

    def drain(self) -> List[Span]:
        """Atomically remove and return every stored span (exporter hook)."""
        with self._lock:
            spans = list(self._spans)
            self._spans.clear()
        return spans

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


#: Process-global default sink; tests clear it between scenarios.
SPAN_STORE = SpanStore()

_tls = threading.local()


def current_context() -> Optional[TraceContext]:
    """The trace context active on this thread, if any."""
    return getattr(_tls, "ctx", None)


@contextmanager
def use_context(ctx: Optional[TraceContext]) -> Iterator[None]:
    """Activate ``ctx`` on this thread for the duration of the block.

    Used by thread-pool workers to adopt the context captured by the
    submitting thread; ``None`` is accepted and is a no-op so callers do not
    need to special-case untraced operation.
    """
    previous = getattr(_tls, "ctx", None)
    _tls.ctx = ctx if ctx is not None else previous
    try:
        yield
    finally:
        _tls.ctx = previous


@contextmanager
def start_span(name: str, component: str = "", node_id: str = "",
               parent: Optional[TraceContext] = None,
               attributes: Optional[Dict[str, object]] = None,
               store: Optional[SpanStore] = None) -> Iterator[Optional[Span]]:
    """Open a span, activate its context on this thread, record on exit.

    ``parent`` overrides the thread-local context (used by the server side
    of an RPC, where the parent arrived on the wire).  Exceptions mark the
    span ``status="error"`` with the exception repr and re-raise, so failed
    RPCs leave an annotated tombstone in the tree.
    """
    if not runtime.ENABLED:
        yield None
        return
    parent_ctx = parent if parent is not None else current_context()
    span = Span(
        trace_id=parent_ctx.trace_id if parent_ctx else new_id(),
        span_id=new_id(),
        parent_id=parent_ctx.span_id if parent_ctx else None,
        name=name,
        component=component,
        node_id=node_id,
        start_time=time.time(),
        attributes=dict(attributes or {}),
    )
    started = time.perf_counter()
    previous = getattr(_tls, "ctx", None)
    _tls.ctx = span.context
    try:
        yield span
    except BaseException as exc:
        span.status = "error"
        span.error = f"{type(exc).__name__}: {exc}"
        raise
    finally:
        _tls.ctx = previous
        span.duration = time.perf_counter() - started
        (store if store is not None else SPAN_STORE).record(span)


def inject(payload: Dict[str, object]) -> None:
    """Stamp the current context into an RPC payload (no-op when untraced)."""
    if not runtime.ENABLED:
        return
    ctx = current_context()
    if ctx is not None:
        payload[TRACE_KEY] = ctx.to_wire()


def extract(payload: Dict[str, object]) -> Optional[TraceContext]:
    """Pop and parse the trace context from an RPC payload, if present."""
    wire = payload.pop(TRACE_KEY, None)
    if wire is None:
        return None
    return TraceContext.from_wire(wire)
