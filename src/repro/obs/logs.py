"""Structured logging for the reproduction: component + node-id on every record.

The maintenance loops used to swallow expected soft-state failures
(unreachable manager, dead gossip peer, lost repair source) silently; they
now log through :func:`component_logger`, which stamps ``component`` and
``node_id`` fields onto every record.  :func:`logging_setup` installs a
stream handler whose format surfaces those fields; without it, records
still propagate to whatever handlers the host application configured (and
the fields remain available on the record for structured consumers).
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, TextIO

#: Root of the reproduction's logger namespace.
ROOT_LOGGER_NAME = "repro"

#: Marker attribute identifying handlers installed by :func:`logging_setup`.
_HANDLER_MARKER = "_repro_obs_handler"

DEFAULT_FORMAT = (
    "%(asctime)s %(levelname)s %(name)s [%(component)s/%(node_id)s] %(message)s"
)


class _EnsureFields(logging.Filter):
    """Guarantee ``component``/``node_id`` exist on every record we format."""

    def filter(self, record: logging.LogRecord) -> bool:
        if not hasattr(record, "component"):
            record.component = "-"
        if not hasattr(record, "node_id"):
            record.node_id = "-"
        return True


def logging_setup(level: int = logging.INFO,
                  stream: Optional[TextIO] = None,
                  fmt: str = DEFAULT_FORMAT,
                  force: bool = False) -> logging.Logger:
    """Install a structured stream handler on the ``repro`` logger.

    Idempotent: a second call adjusts the level but does not stack handlers
    unless ``force`` is given (which replaces the previously installed one).
    Returns the configured logger.  Propagation to the root logger is left
    on so pytest's ``caplog`` and host-application handlers keep working.
    """
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    existing = [
        handler for handler in logger.handlers
        if getattr(handler, _HANDLER_MARKER, False)
    ]
    if existing and not force:
        logger.setLevel(level)
        return logger
    for handler in existing:
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(fmt))
    handler.addFilter(_EnsureFields())
    setattr(handler, _HANDLER_MARKER, True)
    logger.addHandler(handler)
    logger.setLevel(level)
    return logger


def component_logger(component: str, node_id: str = "") -> logging.LoggerAdapter:
    """A logger adapter stamping ``component``/``node_id`` on every record."""
    logger = logging.getLogger(f"{ROOT_LOGGER_NAME}.{component}")
    return logging.LoggerAdapter(
        logger, {"component": component, "node_id": node_id}
    )
