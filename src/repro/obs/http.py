"""Per-node HTTP telemetry endpoints — dependency-free, threaded, embeddable.

Every node-like component (manager, standby, benefactor) can run one
:class:`ObsHttpServer` next to its RPC endpoint, turning the pull-by-RPC-only
telemetry of the observability subsystem into a live plane any scraper can
reach with plain ``curl``:

* ``GET /metrics`` — Prometheus text exposition of the node's registry
  (cumulative series plus windowed-summary quantiles).
* ``GET /metrics.json`` — the same snapshot as deterministic JSON.
* ``GET /spans`` — the span store dump (``{"spans": [...]}``); with
  ``?format=otlp`` the same spans in OTLP/JSON shape.  When the server owns
  an :class:`~repro.obs.otlp.OtlpJsonlSpanExporter`, every ``/spans`` hit
  also drains newly finished spans to the rotated on-disk files, so scraping
  doubles as shipping.
* ``GET /health`` — the node's role-aware health document; HTTP 200 when the
  node reports itself ready to serve its clients, 503 otherwise, so plain
  load-balancer-style checks work without parsing the body.

The server is stdlib-only (``http.server.ThreadingHTTPServer``), binds an
ephemeral port by default, and never logs to stdout (T20 gate).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional
from urllib.parse import urlparse

from repro.obs.export import to_json, to_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.otlp import OtlpJsonlSpanExporter, otlp_resource_spans
from repro.obs.tracing import SPAN_STORE, SpanStore

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
JSON_CONTENT_TYPE = "application/json; charset=utf-8"


class _TelemetryHandler(BaseHTTPRequestHandler):
    """Routes one request; all state lives on the owning server object."""

    protocol_version = "HTTP/1.1"
    server_version = "stdchk-obs"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence default stderr access logging (library code never prints)."""

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        owner: "ObsHttpServer" = self.server.owner  # type: ignore[attr-defined]
        parsed = urlparse(self.path)
        try:
            route = owner.routes.get(parsed.path)
            if route is None:
                self._respond(404, JSON_CONTENT_TYPE,
                              json.dumps({"error": "not found",
                                          "path": parsed.path}))
                return
            status, content_type, body = route(parsed.query)
            self._respond(status, content_type, body)
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as exc:  # noqa: BLE001 - a scrape must never kill a node
            self._respond(500, JSON_CONTENT_TYPE,
                          json.dumps({"error": f"{type(exc).__name__}: {exc}"}))

    def _respond(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)


class ObsHttpServer:
    """One node's telemetry endpoint (threaded, daemonized, ephemeral port).

    ``health_provider`` is a zero-argument callable returning the node's
    health document; the HTTP status derives from its ``ready`` key.
    ``span_store`` defaults to the process-global store; ``span_exporter``
    optionally ships drained spans to rotated OTLP/JSON-lines files on every
    ``/spans`` scrape.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        health_provider: Optional[Callable[[], Dict[str, object]]] = None,
        span_store: Optional[SpanStore] = None,
        span_exporter: Optional[OtlpJsonlSpanExporter] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry
        self.health_provider = health_provider
        self.span_store = span_store if span_store is not None else SPAN_STORE
        self.span_exporter = span_exporter
        self._server = ThreadingHTTPServer((host, port), _TelemetryHandler)
        self._server.daemon_threads = True
        self._server.owner = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._scrapes = registry.counter(
            "obs_http_requests_total",
            "Telemetry endpoint requests served, by route.",
            labelnames=("route",),
        )
        self.routes: Dict[str, Callable[[str], tuple]] = {
            "/metrics": self._metrics,
            "/metrics.json": self._metrics_json,
            "/spans": self._spans,
            "/health": self._health,
        }

    # -- lifecycle -----------------------------------------------------------
    @property
    def address(self) -> str:
        host, port = self._server.server_address[:2]
        return f"{host}:{port}"

    @property
    def url(self) -> str:
        return f"http://{self.address}"

    def start(self) -> "ObsHttpServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True,
            name=f"obs-http-{self.address}",
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    # -- routes --------------------------------------------------------------
    def _metrics(self, query: str) -> tuple:
        self._scrapes.labels(route="/metrics").inc()
        return 200, PROMETHEUS_CONTENT_TYPE, to_prometheus(self.registry.snapshot())

    def _metrics_json(self, query: str) -> tuple:
        self._scrapes.labels(route="/metrics.json").inc()
        return 200, JSON_CONTENT_TYPE, to_json(self.registry.snapshot())

    def _spans(self, query: str) -> tuple:
        self._scrapes.labels(route="/spans").inc()
        if self.span_exporter is not None:
            # Scraping doubles as shipping: the drained batch lands in the
            # rotated files *and* in this response body.
            spans = self.span_exporter.drain(self.span_store)
        else:
            spans = self.span_store.spans()
        if "format=otlp" in query:
            body = json.dumps(otlp_resource_spans(spans), sort_keys=True)
        else:
            body = json.dumps(
                {"spans": [span.to_dict() for span in spans],
                 "exported": (self.span_exporter.spans_exported
                              if self.span_exporter is not None else 0)},
                sort_keys=True,
            )
        return 200, JSON_CONTENT_TYPE, body

    def _health(self, query: str) -> tuple:
        self._scrapes.labels(route="/health").inc()
        if self.health_provider is None:
            document: Dict[str, object] = {"ready": True, "status": "ok"}
        else:
            document = dict(self.health_provider())
        status = 200 if document.get("ready") else 503
        return status, JSON_CONTENT_TYPE, json.dumps(document, sort_keys=True)
