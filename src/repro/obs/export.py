"""Exporters: Prometheus text exposition and JSON for registry snapshots.

Both functions operate on the plain-dict snapshots produced by
:meth:`repro.obs.metrics.MetricsRegistry.snapshot` (or the aggregate shape
from :func:`repro.obs.metrics.merge_snapshots`), so they work equally for a
single node, an RPC-scraped remote node, and a pool-wide merge.
"""

from __future__ import annotations

import json
from typing import Dict, Mapping


def _escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format.

    Order matters: the backslash must be doubled first or the escapes
    introduced for quotes/newlines would themselves be re-escaped.
    """
    return value.replace("\\", "\\\\").replace("\"", "\\\"").replace("\n", "\\n")


def _escape_help(text: str) -> str:
    """Escape HELP text (backslash and newline only, per the format)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(labels: Mapping[str, str],
                   extra: Mapping[str, str] = ()) -> str:
    merged: Dict[str, str] = dict(extra or {})
    merged.update(labels)
    if not merged:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in sorted(merged.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    number = float(value)
    if number == int(number):
        return str(int(number))
    return repr(number)


def to_prometheus(snapshot: dict) -> str:
    """Render one snapshot in the Prometheus text exposition format.

    The snapshot's ``component``/``node_id`` identity is attached to every
    sample as ``component=...,node=...`` labels so that scraped nodes stay
    distinguishable after concatenation.
    """
    identity: Dict[str, str] = {}
    if snapshot.get("component"):
        identity["component"] = str(snapshot["component"])
    if snapshot.get("node_id"):
        identity["node"] = str(snapshot["node_id"])
    lines = []
    for name in sorted(snapshot.get("metrics", {})):
        family = snapshot["metrics"][name]
        if family.get("help"):
            lines.append(f"# HELP {name} {_escape_help(str(family['help']))}")
        # Windowed families carry sliding-window quantiles — exactly the
        # exposition semantics of a summary.
        family_type = family["type"]
        lines.append(
            f"# TYPE {name} "
            f"{'summary' if family_type == 'window' else family_type}"
        )
        for entry in family.get("series", []):
            labels = entry.get("labels", {})
            if family_type == "window":
                for quantile in ("0.5", "0.9", "0.99"):
                    stat = f"p{int(float(quantile) * 100)}"
                    quantile_labels = dict(labels)
                    quantile_labels["quantile"] = quantile
                    lines.append(
                        f"{name}{_render_labels(quantile_labels, identity)} "
                        f"{_format_value(entry.get(stat, 0.0))}"
                    )
                lines.append(
                    f"{name}_sum{_render_labels(labels, identity)} "
                    f"{_format_value(entry.get('sum', 0.0))}"
                )
                lines.append(
                    f"{name}_count{_render_labels(labels, identity)} "
                    f"{_format_value(entry.get('count', 0.0))}"
                )
            elif family_type == "histogram":
                for bound, count in entry.get("buckets", {}).items():
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = bound
                    lines.append(
                        f"{name}_bucket"
                        f"{_render_labels(bucket_labels, identity)} {count}"
                    )
                lines.append(
                    f"{name}_sum{_render_labels(labels, identity)} "
                    f"{_format_value(entry.get('sum', 0.0))}"
                )
                lines.append(
                    f"{name}_count{_render_labels(labels, identity)} "
                    f"{entry.get('count', 0)}"
                )
            else:
                lines.append(
                    f"{name}{_render_labels(labels, identity)} "
                    f"{_format_value(entry.get('value', 0.0))}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def to_json(snapshot: dict, indent: int = 2) -> str:
    """Render one snapshot as deterministic JSON."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)
