"""Thread-safe metrics registry: labeled counters, gauges and histograms.

Every node-like component (manager, benefactor, client) owns one
:class:`MetricsRegistry` stamped with a ``component`` and ``node_id``; the
pool layers aggregate per-node snapshots with :func:`merge_snapshots`.

Design constraints, in order:

* **Cheap hot path.**  Recording is a dict lookup done once (callers hold on
  to the child series object) plus a short critical section guarded by a
  per-series lock.  When the global observability switch is off, recording
  is a single attribute read and an early return.
* **Exact under concurrency.**  Python's ``+=`` on an attribute is a
  read-modify-write across bytecodes, so every mutation takes the series
  lock; N threads x M increments sum to exactly N*M (covered by tests).
* **No dependencies.**  Snapshots are plain dicts; the Prometheus text
  exposition lives in :mod:`repro.obs.export`.
"""

from __future__ import annotations

import bisect
import math
import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.obs import runtime
from repro.obs.windows import (
    DEFAULT_WINDOW_BUCKETS,
    DEFAULT_WINDOW_SECONDS,
    WindowedHistogram,
)

#: Default latency buckets (seconds): micro-benchmark-friendly at the low
#: end, wide enough for multi-second snapshot/recovery work at the top.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class CounterSeries:
    """A single labeled counter series (monotonically non-decreasing)."""

    __slots__ = ("labels", "_lock", "_value")

    def __init__(self, labels: Mapping[str, str]):
        self.labels = dict(labels)
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not runtime.ENABLED:
            return
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class GaugeSeries:
    """A single labeled gauge series (free to go up and down)."""

    __slots__ = ("labels", "_lock", "_value")

    def __init__(self, labels: Mapping[str, str]):
        self.labels = dict(labels)
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        if not runtime.ENABLED:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not runtime.ENABLED:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class HistogramSeries:
    """A single labeled histogram series with cumulative-style buckets."""

    __slots__ = ("labels", "buckets", "_lock", "_counts", "_sum", "_count")

    def __init__(self, labels: Mapping[str, str],
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.labels = dict(labels)
        self.buckets = tuple(sorted(buckets))
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.buckets) + 1)  # final slot: +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        if not runtime.ENABLED:
            return
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @contextmanager
    def time(self) -> Iterator[None]:
        """Context manager recording the elapsed wall time of the block."""
        if not runtime.ENABLED:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - start)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def bucket_counts(self) -> Dict[str, int]:
        """Cumulative bucket counts keyed by upper bound (Prometheus ``le``)."""
        with self._lock:
            counts = list(self._counts)
        out: Dict[str, int] = {}
        running = 0
        for bound, count in zip(self.buckets, counts):
            running += count
            out[_format_bound(bound)] = running
        out["+Inf"] = running + counts[-1]
        return out


def _format_bound(bound: float) -> str:
    if bound == math.inf:
        return "+Inf"
    text = repr(bound)
    return text


class _MetricFamily:
    """Common get-or-create machinery shared by the three metric kinds."""

    kind = "untyped"
    _series_cls: type = CounterSeries

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._series: Dict[Tuple[str, ...], object] = {}
        self._default = None if self.labelnames else self._make_series({})
        if self._default is not None:
            self._series[()] = self._default

    def _make_series(self, labels: Mapping[str, str]):
        return self._series_cls(labels)

    def labels(self, **labelvalues: str):
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labelnames}, "
                f"got {tuple(labelvalues)}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._make_series(
                    {name: str(labelvalues[name]) for name in self.labelnames}
                )
                self._series[key] = series
        return series

    def series(self) -> List:
        with self._lock:
            return list(self._series.values())

    # Unlabeled convenience: a family declared without labelnames behaves
    # like its single series, so `registry.counter("x").inc()` just works.
    def _require_default(self):
        if self._default is None:
            raise ValueError(
                f"metric {self.name!r} is labeled; use .labels(...) first"
            )
        return self._default


class Counter(_MetricFamily):
    kind = "counter"
    _series_cls = CounterSeries

    def inc(self, amount: float = 1.0) -> None:
        self._require_default().inc(amount)

    @property
    def value(self) -> float:
        return self._require_default().value


class Gauge(_MetricFamily):
    kind = "gauge"
    _series_cls = GaugeSeries

    def set(self, value: float) -> None:
        self._require_default().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._require_default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._require_default().dec(amount)

    @property
    def value(self) -> float:
        return self._require_default().value


class Histogram(_MetricFamily):
    kind = "histogram"
    _series_cls = HistogramSeries

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.buckets = tuple(sorted(buckets))
        super().__init__(name, help, labelnames)

    def _make_series(self, labels: Mapping[str, str]):
        return HistogramSeries(labels, self.buckets)

    def observe(self, value: float) -> None:
        self._require_default().observe(value)

    def time(self):
        return self._require_default().time()

    @property
    def count(self) -> int:
        return self._require_default().count

    @property
    def sum(self) -> float:
        return self._require_default().sum


def _package_version() -> str:
    # Imported lazily: repro/__init__ imports this module transitively.
    try:
        from repro import __version__
    except ImportError:  # pragma: no cover - partial-init edge
        return "unknown"
    return __version__


class MetricsRegistry:
    """A per-node family registry stamped with component/node identity.

    ``clock`` (any object with a ``now() -> float`` method, e.g.
    :class:`repro.util.clock.Clock`) drives the windowed series and the
    ``process_uptime_seconds`` gauge; the default is the process monotonic
    clock.  Every registry also carries a ``stdchk_build_info`` info-style
    metric stamped with the package version, so any scrape identifies the
    code it is looking at.
    """

    def __init__(self, component: str = "", node_id: str = "",
                 clock=None):
        self.component = component
        self.node_id = node_id
        self._now: Callable[[], float] = (
            clock.now if clock is not None else time.monotonic
        )
        #: Default trailing window applied to windowed series; deployments
        #: override it from ``StdchkConfig.metrics_window_seconds``.
        self.window_seconds = DEFAULT_WINDOW_SECONDS
        self.window_buckets = DEFAULT_WINDOW_BUCKETS
        self._lock = threading.Lock()
        self._families: Dict[str, _MetricFamily] = {}
        self._started = self._now()
        self._uptime = self.gauge(
            "process_uptime_seconds",
            "Seconds since this node's registry was created.",
        )
        build = self.gauge(
            "stdchk_build_info",
            "Constant 1; the version label identifies the running build.",
            labelnames=("version",),
        ).labels(version=_package_version())
        # Identity must survive the global kill switch (a scrape of a
        # disabled node should still say what build it is), so set the
        # series directly instead of through the gated setter.
        with build._lock:
            build._value = 1.0

    def _get_or_create(self, cls, name: str, help: str,
                       labelnames: Sequence[str], **kwargs):
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = cls(name, help, labelnames, **kwargs)
                self._families[name] = family
            elif not isinstance(family, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}"
                )
            elif tuple(labelnames) != family.labelnames:
                raise ValueError(
                    f"metric {name!r} already registered with labels "
                    f"{family.labelnames}"
                )
        return family

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames,
                                   buckets=buckets)

    def windowed_histogram(self, name: str, help: str = "",
                           labelnames: Sequence[str] = (),
                           window_seconds: Optional[float] = None,
                           bounds: Sequence[float] = ()) -> WindowedHistogram:
        """A windowed (recent-quantile) family over this registry's clock."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = WindowedHistogram(
                    name, help, labelnames, now=self._now,
                    window_seconds=(window_seconds if window_seconds is not None
                                    else self.window_seconds),
                    window_buckets=self.window_buckets,
                    bounds=bounds,
                )
                self._families[name] = family  # type: ignore[assignment]
            elif not isinstance(family, WindowedHistogram):
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}"
                )
            elif tuple(labelnames) != family.labelnames:
                raise ValueError(
                    f"metric {name!r} already registered with labels "
                    f"{family.labelnames}"
                )
        return family

    def window_summary(self, name: str) -> Optional[Dict[str, float]]:
        """The family-wide live-window summary of one windowed metric."""
        with self._lock:
            family = self._families.get(name)
        if not isinstance(family, WindowedHistogram):
            return None
        return family.summary()

    def families(self) -> List[_MetricFamily]:
        with self._lock:
            return list(self._families.values())

    def snapshot(self) -> dict:
        """A point-in-time JSON-friendly dump of every series."""
        self._uptime.set(self._now() - self._started)
        metrics: Dict[str, dict] = {}
        for family in self.families():
            entries = []
            for series in family.series():
                entry: Dict[str, object] = {"labels": dict(series.labels)}
                if isinstance(series, HistogramSeries):
                    entry["count"] = series.count
                    entry["sum"] = series.sum
                    entry["buckets"] = series.bucket_counts()
                elif family.kind == "window":
                    entry.update(series.summary())
                else:
                    entry["value"] = series.value
                entries.append(entry)
            metrics[family.name] = {
                "type": family.kind,
                "help": family.help,
                "labelnames": list(family.labelnames),
                "series": entries,
            }
        return {
            "component": self.component,
            "node_id": self.node_id,
            "metrics": metrics,
        }


def merge_snapshots(snapshots: Sequence[Optional[dict]]) -> dict:
    """Aggregate per-node snapshots into one cluster-wide snapshot.

    Series are summed by (metric name, label set); each input series gains a
    ``node`` label (``component/node_id``) is *not* retained — aggregation is
    intentionally lossy so the output reads like one logical exporter.
    Gauges sum as well, which is the useful semantics for the gauges we
    export (outstanding requests, failed-set sizes, routed replica load).
    """
    merged: Dict[str, dict] = {}
    for snap in snapshots:
        if not snap:
            continue
        for name, family in snap.get("metrics", {}).items():
            target = merged.setdefault(name, {
                "type": family["type"],
                "help": family.get("help", ""),
                "labelnames": list(family.get("labelnames", [])),
                "series": {},
            })
            for entry in family.get("series", []):
                key = tuple(sorted(entry.get("labels", {}).items()))
                slot = target["series"].get(key)
                if family["type"] == "window":
                    # Counts/rates sum; quantiles and maxima take the worst
                    # node (a cluster's recent p99 is at least its slowest
                    # member's — conservative, and honest about lossiness).
                    if slot is None:
                        slot = {"labels": dict(entry.get("labels", {}))}
                        target["series"][key] = slot
                    for stat in ("count", "sum", "rate"):
                        slot[stat] = slot.get(stat, 0.0) + entry.get(stat, 0.0)
                    for stat in ("p50", "p90", "p99", "max"):
                        slot[stat] = max(slot.get(stat, 0.0),
                                         entry.get(stat, 0.0))
                    slot["mean"] = (slot["sum"] / slot["count"]
                                    if slot["count"] else 0.0)
                    slot["window_seconds"] = entry.get("window_seconds", 0.0)
                elif family["type"] == "histogram":
                    if slot is None:
                        slot = {
                            "labels": dict(entry.get("labels", {})),
                            "count": 0,
                            "sum": 0.0,
                            "buckets": {},
                        }
                        target["series"][key] = slot
                    slot["count"] += entry.get("count", 0)
                    slot["sum"] += entry.get("sum", 0.0)
                    for bound, count in entry.get("buckets", {}).items():
                        slot["buckets"][bound] = (
                            slot["buckets"].get(bound, 0) + count
                        )
                else:
                    if slot is None:
                        slot = {
                            "labels": dict(entry.get("labels", {})),
                            "value": 0.0,
                        }
                        target["series"][key] = slot
                    slot["value"] += entry.get("value", 0.0)
    return {
        "component": "aggregate",
        "node_id": "",
        "metrics": {
            name: {
                "type": family["type"],
                "help": family["help"],
                "labelnames": family["labelnames"],
                "series": list(family["series"].values()),
            }
            for name, family in merged.items()
        },
    }
