"""OTLP-shaped JSON-lines span export with bounded on-disk rotation.

Ships :data:`~repro.obs.tracing.SPAN_STORE` contents off-node without any
collector dependency: each exported batch is one line of OTLP/JSON
(``resourceSpans`` → ``scopeSpans`` → ``spans``), so the files can be
replayed into any OTLP-compatible backend with plain ``curl`` line by line,
or read directly by humans and tests.

Rotation is size-bounded: when the active file exceeds ``max_bytes`` it is
renamed ``<path>.1`` (shifting older generations up, dropping the oldest
beyond ``max_files``), so a long-lived node can export every span forever in
bounded disk space.  The same rotation primitive backs the health monitor's
event log.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, List, Optional, Sequence

from repro.obs.tracing import Span, SpanStore


class RotatingJsonlWriter:
    """Append JSON objects one-per-line to a size-rotated file family."""

    def __init__(self, path: str, max_bytes: int = 4 * 1024 * 1024,
                 max_files: int = 3) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        if max_files < 1:
            raise ValueError("max_files must be at least 1")
        self.path = path
        self.max_bytes = max_bytes
        self.max_files = max_files
        self._lock = threading.Lock()
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)

    def write(self, record: Dict[str, object]) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self._lock:
            self._rotate_if_needed(len(line) + 1)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")

    def _rotate_if_needed(self, incoming: int) -> None:
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return
        if size == 0 or size + incoming <= self.max_bytes:
            return
        oldest = f"{self.path}.{self.max_files - 1}"
        if self.max_files == 1:
            os.replace(self.path, self.path + ".tmp")
            os.remove(self.path + ".tmp")
            return
        if os.path.exists(oldest):
            os.remove(oldest)
        for generation in range(self.max_files - 2, 0, -1):
            source = f"{self.path}.{generation}"
            if os.path.exists(source):
                os.replace(source, f"{self.path}.{generation + 1}")
        os.replace(self.path, f"{self.path}.1")

    def files(self) -> List[str]:
        """Every existing file of the family, newest first."""
        out = [self.path] if os.path.exists(self.path) else []
        for generation in range(1, self.max_files):
            candidate = f"{self.path}.{generation}"
            if os.path.exists(candidate):
                out.append(candidate)
        return out


def _otlp_id(hex_id: Optional[str], width: int) -> str:
    """Zero-pad our 8-byte ids to OTLP's 16-byte trace / 8-byte span hex."""
    return (hex_id or "").rjust(width, "0")


def _otlp_attributes(attributes: Dict[str, object]) -> List[dict]:
    return [
        {"key": str(key), "value": {"stringValue": str(value)}}
        for key, value in sorted(attributes.items(), key=lambda kv: str(kv[0]))
    ]


def otlp_span(span: Span) -> dict:
    """One span in OTLP/JSON shape (ids padded to OTLP widths)."""
    start_nanos = int(span.start_time * 1e9)
    end_nanos = start_nanos + int(span.duration * 1e9)
    out = {
        "traceId": _otlp_id(span.trace_id, 32),
        "spanId": _otlp_id(span.span_id, 16),
        "name": span.name,
        "startTimeUnixNano": str(start_nanos),
        "endTimeUnixNano": str(end_nanos),
        "status": {"code": "STATUS_CODE_ERROR" if span.status == "error"
                   else "STATUS_CODE_OK"},
        "attributes": _otlp_attributes(dict(span.attributes)),
    }
    if span.parent_id:
        out["parentSpanId"] = _otlp_id(span.parent_id, 16)
    if span.error:
        out["status"]["message"] = span.error
    return out


def otlp_resource_spans(spans: Sequence[Span]) -> dict:
    """A batch of finished spans as one OTLP/JSON export request body.

    Spans are grouped by (component, node id) into one ``resourceSpans``
    entry each, mirroring how a per-node OTLP SDK would report them.
    """
    grouped: Dict[tuple, List[Span]] = {}
    for span in spans:
        grouped.setdefault((span.component, span.node_id), []).append(span)
    resource_spans = []
    for (component, node_id), members in sorted(grouped.items()):
        attributes = []
        if component:
            attributes.append({"key": "service.name",
                               "value": {"stringValue": component}})
        if node_id:
            attributes.append({"key": "service.instance.id",
                               "value": {"stringValue": node_id}})
        resource_spans.append({
            "resource": {"attributes": attributes},
            "scopeSpans": [{
                "scope": {"name": "repro.obs"},
                "spans": [otlp_span(span) for span in members],
            }],
        })
    return {"resourceSpans": resource_spans}


class OtlpJsonlSpanExporter:
    """Drain a :class:`SpanStore` into rotated OTLP/JSON-lines files."""

    def __init__(self, path: str, max_bytes: int = 4 * 1024 * 1024,
                 max_files: int = 3) -> None:
        self._writer = RotatingJsonlWriter(path, max_bytes=max_bytes,
                                           max_files=max_files)
        self._lock = threading.Lock()
        self.spans_exported = 0

    @property
    def path(self) -> str:
        return self._writer.path

    def files(self) -> List[str]:
        return self._writer.files()

    def export(self, spans: Sequence[Span]) -> int:
        """Write one batch (one JSON line); returns the span count."""
        if not spans:
            return 0
        self._writer.write(otlp_resource_spans(spans))
        with self._lock:
            self.spans_exported += len(spans)
        return len(spans)

    def drain(self, store: SpanStore) -> List[Span]:
        """Atomically take every finished span from ``store``, export and
        return them (the caller may still want to render the batch)."""
        spans = store.drain()
        self.export(spans)
        return spans
