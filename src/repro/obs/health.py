"""Cluster health monitor: probe scraping, suspicion states, transitions.

The :class:`ClusterHealthMonitor` is the failure-detector half of the live
observability plane.  It periodically probes every known node's ``/health``
document (over HTTP or the RPC transport — the probe is just a callable) and
maintains a per-node suspicion state machine:

``alive`` → (no successful probe for ``suspect_after`` seconds) → ``suspect``
→ (``dead_after`` seconds) → ``dead`` → (a probe succeeds) → ``alive``

Timeout-based liveness suspicion is the classic desktop-grid detector (the
scavenged benefactors stdchk runs on are exactly the volatile population the
P2P checkpointing literature models this way); the latency EWMA kept per
node gives operators an early-warning signal before the binary detector
trips.  Every state transition is appended to a bounded in-memory event log
(optionally mirrored to a rotated JSON-lines file) and handed to the
``on_transition`` callback — the groundwork for automatic standby promotion:
a supervisor subscribing to ``("manager", ..., "dead")`` events has exactly
the trigger it needs.

:meth:`cluster_status` condenses the last probe results into one document:
roles, replication lag, under-replicated chunk count and per-node SLO
summaries — the page a human (or CI artifact) looks at first.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.util.clock import Clock, SystemClock

#: Node states of the suspicion machine, healthiest first.
STATES = ("alive", "suspect", "dead")

#: Smoothing factor of the per-node probe-latency EWMA.
EWMA_ALPHA = 0.2


@dataclass
class NodeHealth:
    """Mutable per-node detector state (guarded by the monitor lock)."""

    node_id: str
    kind: str
    probe: Callable[[], Dict[str, object]] = field(repr=False, default=None)
    state: str = "alive"
    last_ok: float = 0.0
    last_attempt: float = 0.0
    last_error: Optional[str] = None
    latency_ewma: Optional[float] = None
    consecutive_failures: int = 0
    payload: Dict[str, object] = field(default_factory=dict)

    def view(self) -> Dict[str, object]:
        return {
            "node_id": self.node_id,
            "kind": self.kind,
            "state": self.state,
            "last_ok": self.last_ok,
            "last_error": self.last_error,
            "latency_ewma": self.latency_ewma,
            "consecutive_failures": self.consecutive_failures,
            "role": self.payload.get("role"),
            "ready": self.payload.get("ready"),
            "status": self.payload.get("status"),
            "slo": self.payload.get("slo"),
        }


@dataclass(frozen=True)
class HealthTransition:
    """One recorded state change of one node."""

    node_id: str
    kind: str
    old_state: str
    new_state: str
    at: float
    reason: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "node_id": self.node_id,
            "kind": self.kind,
            "old_state": self.old_state,
            "new_state": self.new_state,
            "at": self.at,
            "reason": self.reason,
        }


class ClusterHealthMonitor:
    """Scrape ``/health`` across a deployment and detect failures.

    ``probe_interval`` / ``suspect_after`` / ``dead_after`` mirror the
    ``health_*`` knobs of :class:`~repro.util.config.StdchkConfig`.  Probes
    run either explicitly (:meth:`probe_once`, deterministic for tests) or
    on a background thread (:meth:`start` / :meth:`stop`) for long-lived
    deployments.  ``on_transition(transition)`` fires outside the monitor
    lock, after the event is logged.
    """

    def __init__(
        self,
        clock: Optional[Clock] = None,
        probe_interval: float = 1.0,
        suspect_after: float = 3.0,
        dead_after: float = 10.0,
        on_transition: Optional[Callable[[HealthTransition], None]] = None,
        event_log=None,
        max_events: int = 256,
        registry=None,
    ) -> None:
        if probe_interval <= 0:
            raise ValueError("probe_interval must be positive")
        if not (0 < suspect_after <= dead_after):
            raise ValueError(
                "suspect_after must be positive and at most dead_after"
            )
        self.clock = clock if clock is not None else SystemClock()
        self.probe_interval = probe_interval
        self.suspect_after = suspect_after
        self.dead_after = dead_after
        self.on_transition = on_transition
        #: Optional :class:`~repro.obs.otlp.RotatingJsonlWriter` mirroring
        #: the transition log to bounded on-disk files.
        self.event_log = event_log
        self.max_events = max_events
        self._nodes: Dict[str, NodeHealth] = {}
        self._events: List[HealthTransition] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.probes_total = 0
        self.probe_failures = 0
        self._registry = registry
        self._probe_window = (
            registry.windowed_histogram(
                "health_probe_seconds_window",
                "Recent health-probe latency across monitored nodes.",
            ) if registry is not None else None
        )
        self._transitions_counter = (
            registry.counter(
                "health_transitions_total",
                "Node health-state transitions observed, by new state.",
                labelnames=("state",),
            ) if registry is not None else None
        )

    # -- membership ----------------------------------------------------------
    def add_node(self, node_id: str, probe: Callable[[], Dict[str, object]],
                 kind: str = "node") -> None:
        """Register one node; ``probe`` returns its health dict or raises."""
        now = self.clock.now()
        with self._lock:
            self._nodes[node_id] = NodeHealth(
                node_id=node_id, kind=kind, probe=probe,
                last_ok=now, last_attempt=now,
            )

    def remove_node(self, node_id: str) -> None:
        with self._lock:
            self._nodes.pop(node_id, None)

    def nodes(self) -> List[str]:
        with self._lock:
            return list(self._nodes)

    def state_of(self, node_id: str) -> str:
        with self._lock:
            return self._nodes[node_id].state

    # -- probing -------------------------------------------------------------
    def probe_once(self) -> Dict[str, str]:
        """Probe every node once; returns ``node_id -> state`` afterwards.

        Probes run outside the monitor lock (a hung node must not wedge the
        detector's bookkeeping); state updates re-take it per node.
        """
        with self._lock:
            members = list(self._nodes.values())
        transitions: List[HealthTransition] = []
        for node in members:
            self.probes_total += 1
            started = time.perf_counter()
            try:
                payload = node.probe()
                failure: Optional[str] = None
            except Exception as exc:  # noqa: BLE001 - any failure is a signal
                payload = None
                failure = f"{type(exc).__name__}: {exc}"
                self.probe_failures += 1
            elapsed = time.perf_counter() - started
            if self._probe_window is not None:
                self._probe_window.observe(elapsed)
            transition = self._apply_result(node, payload, failure, elapsed)
            if transition is not None:
                transitions.append(transition)
        for transition in transitions:
            self._record_transition(transition)
        with self._lock:
            return {n.node_id: n.state for n in self._nodes.values()}

    def _apply_result(self, node: NodeHealth, payload: Optional[Dict],
                      failure: Optional[str],
                      elapsed: float) -> Optional[HealthTransition]:
        now = self.clock.now()
        with self._lock:
            if self._nodes.get(node.node_id) is not node:
                return None  # removed while probing
            node.last_attempt = now
            old_state = node.state
            if failure is None:
                node.last_ok = now
                node.last_error = None
                node.consecutive_failures = 0
                node.payload = dict(payload or {})
                node.latency_ewma = (
                    elapsed if node.latency_ewma is None
                    else (1 - EWMA_ALPHA) * node.latency_ewma
                    + EWMA_ALPHA * elapsed
                )
                node.state = "alive"
                reason = "probe ok"
            else:
                node.last_error = failure
                node.consecutive_failures += 1
                silence = now - node.last_ok
                if silence >= self.dead_after:
                    node.state = "dead"
                elif silence >= self.suspect_after:
                    node.state = "suspect"
                reason = f"silent {silence:.2f}s: {failure}"
            if node.state == old_state:
                return None
            return HealthTransition(
                node_id=node.node_id, kind=node.kind, old_state=old_state,
                new_state=node.state, at=now, reason=reason,
            )

    def _record_transition(self, transition: HealthTransition) -> None:
        with self._lock:
            self._events.append(transition)
            if len(self._events) > self.max_events:
                del self._events[: len(self._events) - self.max_events]
        if self._transitions_counter is not None:
            self._transitions_counter.labels(state=transition.new_state).inc()
        if self.event_log is not None:
            try:
                self.event_log.write(transition.to_dict())
            except OSError:  # pragma: no cover - log volume full
                pass
        if self.on_transition is not None:
            self.on_transition(transition)

    def events(self) -> List[HealthTransition]:
        with self._lock:
            return list(self._events)

    # -- background loop -----------------------------------------------------
    def start(self) -> "ClusterHealthMonitor":
        """Probe every ``probe_interval`` seconds on a daemon thread.

        Scheduling uses wall time regardless of the detector clock, so a
        virtual-clock monitor still ticks (liveness arithmetic stays on the
        injected clock).
        """
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="cluster-health-monitor"
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.probe_interval):
            self.probe_once()

    def stop(self) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5)

    # -- reporting -----------------------------------------------------------
    def cluster_status(self) -> Dict[str, object]:
        """One condensed document: states, roles, lag, repair debt, SLOs."""
        with self._lock:
            views = {n.node_id: n.view() for n in self._nodes.values()}
            payloads = {n.node_id: dict(n.payload) for n in self._nodes.values()}
            states = {n.node_id: n.state for n in self._nodes.values()}
            kinds = {n.node_id: n.kind for n in self._nodes.values()}
        roles: Dict[str, List[str]] = {"primary": [], "standby": [],
                                       "benefactor": [], "other": []}
        primary_lsn: Optional[int] = None
        standby_lsns: List[int] = []
        under_replicated: Optional[int] = None
        for node_id, payload in payloads.items():
            role = payload.get("role")
            if role == "primary":
                roles["primary"].append(node_id)
                if payload.get("journal_lsn") is not None:
                    primary_lsn = int(payload["journal_lsn"])  # type: ignore[arg-type]
                if payload.get("under_replicated_chunks") is not None:
                    under_replicated = int(
                        payload["under_replicated_chunks"])  # type: ignore[arg-type]
            elif role == "standby":
                roles["standby"].append(node_id)
                if payload.get("applied_lsn") is not None:
                    standby_lsns.append(int(payload["applied_lsn"]))  # type: ignore[arg-type]
            elif (payload.get("component") == "benefactor"
                  or (not payload and kinds[node_id] == "benefactor")):
                # A node that died before its first successful probe has no
                # payload; fall back to its registered kind.
                roles["benefactor"].append(node_id)
            else:
                roles["other"].append(node_id)
        replication_lag = None
        if primary_lsn is not None and standby_lsns:
            replication_lag = max(0, primary_lsn - min(standby_lsns))
        return {
            "nodes": views,
            "roles": roles,
            "counts": {
                state: sum(1 for value in states.values() if value == state)
                for state in STATES
            },
            "replication_lag_records": replication_lag,
            "under_replicated_chunks": under_replicated,
            "events": [event.to_dict() for event in self.events()[-32:]],
            "detector": {
                "probe_interval": self.probe_interval,
                "suspect_after": self.suspect_after,
                "dead_after": self.dead_after,
                "probes_total": self.probes_total,
                "probe_failures": self.probe_failures,
            },
        }


def http_health_probe(base_url: str, timeout: float = 2.0
                      ) -> Callable[[], Dict[str, object]]:
    """Probe factory fetching ``<base_url>/health`` with stdlib urllib.

    A 503 (alive but not ready — e.g. a standby or a recovering manager)
    still counts as a successful probe: the node answered, so it is not
    *dead*; readiness lives in the payload.
    """
    import urllib.error
    import urllib.request

    url = base_url.rstrip("/") + "/health"

    def probe() -> Dict[str, object]:
        import json as _json

        try:
            with urllib.request.urlopen(url, timeout=timeout) as response:
                return _json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            if exc.code == 503:
                return _json.loads(exc.read().decode("utf-8"))
            raise

    return probe


def rpc_health_probe(transport, address: str
                     ) -> Callable[[], Dict[str, object]]:
    """Probe factory invoking the ``health`` RPC over a transport."""

    def probe() -> Dict[str, object]:
        return transport.call(address, "health")

    return probe
