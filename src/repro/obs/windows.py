"""Windowed time-series instruments: recent quantiles and rates.

The cumulative series in :mod:`repro.obs.metrics` answer "how did this node
behave since it started"; an operator watching a live pool needs "how is it
behaving *now*".  A :class:`WindowedHistogramSeries` keeps a ring buffer of
fixed-duration time buckets over the owning registry's clock — each bucket
holds a count, a sum, a max and value-bucket counts — so :meth:`summary`
reports the p50/p90/p99, rate and mean of the trailing window only.  Old
buckets are recycled lazily on write (no background thread) and expired
buckets are excluded on read, so the series costs O(buckets) memory and the
hot path is one ring-slot update under the series lock.

Exported snapshots give these families the ``"window"`` type; the Prometheus
exporter renders them as ``summary`` samples (``name{quantile="0.99"}``,
``name_sum``, ``name_count``), which is exactly the exposition semantics of
a sliding-window summary.
"""

from __future__ import annotations

import bisect
import threading
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs import runtime

#: Default trailing window and ring resolution for windowed series.
DEFAULT_WINDOW_SECONDS = 60.0
DEFAULT_WINDOW_BUCKETS = 12

#: Quantiles reported by every windowed summary.
SUMMARY_QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.99)


class _TimeBucket:
    """One fixed-duration slice of the ring (mutated only under the lock)."""

    __slots__ = ("index", "count", "sum", "max", "counts")

    def __init__(self, value_buckets: int) -> None:
        self.index = -1
        self.count = 0
        self.sum = 0.0
        self.max = 0.0
        self.counts = [0] * value_buckets

    def reset(self, index: int) -> None:
        self.index = index
        self.count = 0
        self.sum = 0.0
        self.max = 0.0
        for position in range(len(self.counts)):
            self.counts[position] = 0


class WindowedHistogramSeries:
    """A single labeled windowed series over a ring of time buckets."""

    __slots__ = ("labels", "bounds", "window_seconds", "bucket_seconds",
                 "_now", "_lock", "_ring")

    def __init__(self, labels: Mapping[str, str], now: Callable[[], float],
                 window_seconds: float = DEFAULT_WINDOW_SECONDS,
                 window_buckets: int = DEFAULT_WINDOW_BUCKETS,
                 bounds: Sequence[float] = ()) -> None:
        from repro.obs.metrics import DEFAULT_BUCKETS

        self.labels = dict(labels)
        self.bounds = tuple(sorted(bounds)) if bounds else DEFAULT_BUCKETS
        self.window_seconds = float(window_seconds)
        self.bucket_seconds = self.window_seconds / int(window_buckets)
        self._now = now
        self._lock = threading.Lock()
        self._ring = [
            _TimeBucket(len(self.bounds) + 1) for _ in range(int(window_buckets))
        ]

    def observe(self, value: float) -> None:
        if not runtime.ENABLED:
            return
        index = int(self._now() / self.bucket_seconds)
        position = bisect.bisect_left(self.bounds, value)
        with self._lock:
            bucket = self._ring[index % len(self._ring)]
            if bucket.index != index:
                bucket.reset(index)
            bucket.count += 1
            bucket.sum += value
            if value > bucket.max:
                bucket.max = value
            bucket.counts[position] += 1

    # -- read side -----------------------------------------------------------
    def window_state(self) -> Dict[str, object]:
        """Merged (count, sum, max, value-bucket counts) of the live window."""
        current = int(self._now() / self.bucket_seconds)
        oldest = current - len(self._ring) + 1
        count = 0
        total = 0.0
        peak = 0.0
        counts = [0] * (len(self.bounds) + 1)
        with self._lock:
            for bucket in self._ring:
                if not (oldest <= bucket.index <= current) or not bucket.count:
                    continue
                count += bucket.count
                total += bucket.sum
                if bucket.max > peak:
                    peak = bucket.max
                for position, slot in enumerate(bucket.counts):
                    counts[position] += slot
        return {"count": count, "sum": total, "max": peak, "counts": counts}

    def summary(self) -> Dict[str, float]:
        """Recent-window summary: count, rate, mean, max and quantiles."""
        return summarize_window(self.window_state(), self.bounds,
                                self.window_seconds)


def summarize_window(state: Mapping[str, object], bounds: Sequence[float],
                     window_seconds: float) -> Dict[str, float]:
    """Turn one merged window state into the exported summary dict."""
    count = int(state["count"])
    total = float(state["sum"])
    peak = float(state["max"])
    counts: Sequence[int] = state["counts"]  # type: ignore[assignment]
    out: Dict[str, float] = {
        "count": float(count),
        "sum": total,
        "max": peak,
        "rate": (count / window_seconds) if window_seconds > 0 else 0.0,
        "mean": (total / count) if count else 0.0,
        "window_seconds": float(window_seconds),
    }
    for quantile in SUMMARY_QUANTILES:
        out[f"p{int(quantile * 100)}"] = _quantile(counts, bounds, count,
                                                   quantile, peak)
    return out


def _quantile(counts: Sequence[int], bounds: Sequence[float], count: int,
              quantile: float, peak: float) -> float:
    """Prometheus-style bucket-bound quantile estimate over the window.

    Returns the upper bound of the value bucket holding the q-th observation;
    observations beyond the largest bound report the observed window max
    (tighter than +Inf and still conservative).
    """
    if count <= 0:
        return 0.0
    target = quantile * count
    running = 0
    for position, slot in enumerate(counts):
        running += slot
        if running >= target:
            if position < len(bounds):
                return float(bounds[position])
            break
    return peak


def merge_window_states(states: Sequence[Mapping[str, object]],
                        value_buckets: int) -> Dict[str, object]:
    """Combine several series' window states into one (same bounds)."""
    count = 0
    total = 0.0
    peak = 0.0
    counts = [0] * value_buckets
    for state in states:
        count += int(state["count"])
        total += float(state["sum"])
        peak = max(peak, float(state["max"]))
        for position, slot in enumerate(state["counts"]):  # type: ignore[arg-type]
            counts[position] += slot
    return {"count": count, "sum": total, "max": peak, "counts": counts}


class WindowedHistogram:
    """Family of labeled windowed series (the registry-facing handle).

    Mirrors the get-or-create ergonomics of the cumulative families: a
    family declared without label names behaves like its single series, so
    ``registry.windowed_histogram("x").observe(v)`` just works.
    """

    kind = "window"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = (), *,
                 now: Callable[[], float],
                 window_seconds: float = DEFAULT_WINDOW_SECONDS,
                 window_buckets: int = DEFAULT_WINDOW_BUCKETS,
                 bounds: Sequence[float] = ()) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self.window_seconds = float(window_seconds)
        self.window_buckets = int(window_buckets)
        self._now = now
        self._bounds = tuple(bounds)
        self._lock = threading.Lock()
        self._series: Dict[Tuple[str, ...], WindowedHistogramSeries] = {}
        self._default: Optional[WindowedHistogramSeries] = None
        if not self.labelnames:
            self._default = self._make_series({})
            self._series[()] = self._default

    def _make_series(self, labels: Mapping[str, str]) -> WindowedHistogramSeries:
        return WindowedHistogramSeries(
            labels, self._now, window_seconds=self.window_seconds,
            window_buckets=self.window_buckets, bounds=self._bounds,
        )

    def labels(self, **labelvalues: str) -> WindowedHistogramSeries:
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labelnames}, "
                f"got {tuple(labelvalues)}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._make_series(
                    {name: str(labelvalues[name]) for name in self.labelnames}
                )
                self._series[key] = series
        return series

    def series(self) -> List[WindowedHistogramSeries]:
        with self._lock:
            return list(self._series.values())

    def _require_default(self) -> WindowedHistogramSeries:
        if self._default is None:
            raise ValueError(
                f"metric {self.name!r} is labeled; use .labels(...) first"
            )
        return self._default

    def observe(self, value: float) -> None:
        self._require_default().observe(value)

    def summary(self) -> Dict[str, float]:
        """Family-wide summary merging every labeled series' live window."""
        merged = merge_window_states(
            [series.window_state() for series in self.series()],
            len(self._effective_bounds()) + 1,
        )
        return summarize_window(merged, self._effective_bounds(),
                                self.window_seconds)

    def _effective_bounds(self) -> Tuple[float, ...]:
        if self._bounds:
            return self._bounds
        from repro.obs.metrics import DEFAULT_BUCKETS

        return DEFAULT_BUCKETS
