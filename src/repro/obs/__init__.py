"""``repro.obs`` — metrics registry, trace propagation and exporters.

Three pieces, per the observability tentpole:

* :mod:`repro.obs.metrics` — thread-safe labeled counters/gauges/histograms,
  one :class:`MetricsRegistry` per node, :func:`merge_snapshots` for
  pool-wide aggregation.
* :mod:`repro.obs.tracing` — trace contexts injected into RPC payloads on
  both transports, spans recorded to the process-global
  :data:`~repro.obs.tracing.SPAN_STORE`.
* :mod:`repro.obs.export` — Prometheus text exposition + JSON snapshots.

Plus :func:`logging_setup` / :func:`component_logger` for structured logs,
and the global :func:`set_enabled` switch used by the benchmark overhead
gate.
"""

from repro.obs.runtime import is_enabled, set_enabled
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.tracing import (
    SPAN_STORE,
    Span,
    SpanStore,
    TraceContext,
    current_context,
    start_span,
    use_context,
)
from repro.obs.export import to_json, to_prometheus
from repro.obs.logs import component_logger, logging_setup
from repro.obs.windows import (
    WindowedHistogram,
    WindowedHistogramSeries,
)
from repro.obs.otlp import (
    OtlpJsonlSpanExporter,
    RotatingJsonlWriter,
    otlp_resource_spans,
)
from repro.obs.http import ObsHttpServer
from repro.obs.health import (
    ClusterHealthMonitor,
    HealthTransition,
    http_health_probe,
    rpc_health_probe,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
    "SPAN_STORE",
    "Span",
    "SpanStore",
    "TraceContext",
    "current_context",
    "start_span",
    "use_context",
    "to_json",
    "to_prometheus",
    "component_logger",
    "logging_setup",
    "is_enabled",
    "set_enabled",
    "WindowedHistogram",
    "WindowedHistogramSeries",
    "OtlpJsonlSpanExporter",
    "RotatingJsonlWriter",
    "otlp_resource_spans",
    "ObsHttpServer",
    "ClusterHealthMonitor",
    "HealthTransition",
    "http_health_probe",
    "rpc_health_probe",
]
