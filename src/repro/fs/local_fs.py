"""Local-passthrough file system ("FUSE to local I/O").

Table 1's second data point redirects every write through the user-space
layer back to the local file system, measuring the overhead the extra
indirection adds on top of raw local I/O (the paper reports about 2%).  This
class provides the same interface as the stdchk facade but stores files under
a local directory, going through the identical buffering code path so the
comparison is apples-to-apples.
"""

from __future__ import annotations

import os
import shutil
from typing import Dict, List


class _LocalHandle:
    """Handle writing through the facade into a real local file."""

    def __init__(self, fs: "LocalPassthroughFilesystem", path: str,
                 local_path: str, mode: str) -> None:
        self._fs = fs
        self.path = path
        self.mode = mode
        self.closed = False
        file_mode = "wb" if mode in ("w", "wt", "wb") else "rb"
        self._file = open(local_path, file_mode)

    def write(self, data: bytes) -> int:
        self._fs.calls += 1
        written = self._file.write(data)
        self._fs.bytes_accepted += written
        return written

    def read(self, size: int = -1) -> bytes:
        self._fs.calls += 1
        return self._file.read(size)

    def close(self) -> None:
        if self.closed:
            return
        self._fs.calls += 1
        self._file.flush()
        os.fsync(self._file.fileno())
        self._file.close()
        self.closed = True

    def __enter__(self) -> "_LocalHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class LocalPassthroughFilesystem:
    """Facade-shaped wrapper around a local directory."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.calls = 0
        self.bytes_accepted = 0

    def _local_path(self, path: str) -> str:
        relative = path.lstrip("/")
        local = os.path.join(self.root, relative)
        os.makedirs(os.path.dirname(local) or self.root, exist_ok=True)
        return local

    def open(self, path: str, mode: str = "rb", expected_size: int = 0) -> _LocalHandle:
        self.calls += 1
        return _LocalHandle(self, path, self._local_path(path), mode)

    def close(self, handle: _LocalHandle) -> None:
        handle.close()

    def write_file(self, path: str, data: bytes, block_size: int = 0) -> None:
        handle = self.open(path, "wb", expected_size=len(data))
        try:
            if block_size and block_size > 0:
                for start in range(0, len(data), block_size):
                    handle.write(data[start:start + block_size])
            else:
                handle.write(data)
        finally:
            handle.close()

    def read_file(self, path: str) -> bytes:
        handle = self.open(path, "rb")
        try:
            return handle.read()
        finally:
            handle.close()

    def stat(self, path: str) -> Dict[str, object]:
        self.calls += 1
        local = self._local_path(path)
        info = os.stat(local)
        return {"type": "file", "size": info.st_size, "modified_at": info.st_mtime}

    def listdir(self, path: str) -> List[str]:
        self.calls += 1
        return sorted(os.listdir(self._local_path(path)))

    def mkdir(self, path: str, **_kwargs) -> None:
        self.calls += 1
        os.makedirs(self._local_path(path), exist_ok=True)

    def unlink(self, path: str) -> None:
        self.calls += 1
        os.unlink(self._local_path(path))

    def exists(self, path: str) -> bool:
        self.calls += 1
        return os.path.exists(self._local_path(path))

    def cleanup(self) -> None:
        """Remove everything written under the root (test/bench teardown)."""
        shutil.rmtree(self.root, ignore_errors=True)
        os.makedirs(self.root, exist_ok=True)
