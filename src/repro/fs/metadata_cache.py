"""Metadata cache for the FS facade.

The paper's user-space file system "caches metadata information so that most
system readdir and getattr system calls can be answered without contacting
the manager" (section IV.E).  This is a small TTL cache keyed by path and
call kind, invalidated on writes that change the namespace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.util.clock import Clock, SystemClock


@dataclass
class _CacheEntry:
    value: Any
    cached_at: float


class MetadataCache:
    """TTL cache for ``stat``/``listdir`` answers."""

    def __init__(self, ttl: float = 2.0, clock: Optional[Clock] = None) -> None:
        if ttl < 0:
            raise ValueError("ttl must be non-negative")
        self.ttl = ttl
        self.clock = clock if clock is not None else SystemClock()
        self._entries: Dict[Tuple[str, str], _CacheEntry] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def get(self, kind: str, path: str) -> Tuple[bool, Any]:
        """Return ``(hit, value)`` for the cached answer of ``kind`` at ``path``."""
        if self.ttl == 0:
            self.misses += 1
            return False, None
        entry = self._entries.get((kind, path))
        if entry is None:
            self.misses += 1
            return False, None
        if (self.clock.now() - entry.cached_at) > self.ttl:
            del self._entries[(kind, path)]
            self.misses += 1
            return False, None
        self.hits += 1
        return True, entry.value

    def put(self, kind: str, path: str, value: Any) -> None:
        if self.ttl == 0:
            return
        self._entries[(kind, path)] = _CacheEntry(value=value, cached_at=self.clock.now())

    def invalidate(self, path: Optional[str] = None) -> None:
        """Drop cached answers for ``path`` (and its parent), or everything."""
        if path is None:
            self._entries.clear()
            self.invalidations += 1
            return
        parent = path.rsplit("/", 1)[0] or "/"
        stale = [
            key for key in self._entries
            if key[1] == path or key[1] == parent
        ]
        for key in stale:
            del self._entries[key]
        self.invalidations += 1

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    def __len__(self) -> int:
        return len(self._entries)
