"""The stdchk file-system facade.

``StdchkFilesystem`` is the reproduction's stand-in for the FUSE mount: every
call an application (or a checkpointing library) would issue against
``/stdchk`` maps to a method here.  It delegates data movement to the client
proxy, adapts write granularity, performs read-ahead and caches metadata so
most ``readdir``/``getattr`` calls are answered locally.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.client.proxy import ClientProxy
from repro.exceptions import (
    FileNotFoundInStdchkError,
    InvalidFileModeError,
)
from repro.fs.file_handle import StdchkFileHandle
from repro.fs.metadata_cache import MetadataCache
from repro.util.config import StdchkConfig


class StdchkFilesystem:
    """POSIX-like interface over a stdchk pool ("mounted under /stdchk")."""

    def __init__(self, client: ClientProxy, config: Optional[StdchkConfig] = None) -> None:
        self.client = client
        self.config = config if config is not None else client.config
        self.metadata_cache = MetadataCache(
            ttl=self.config.metadata_cache_ttl, clock=client.clock
        )
        #: Open handles by id, mirroring a kernel file-descriptor table.
        self._open_handles: Dict[int, StdchkFileHandle] = {}
        self._next_fd = 3  # 0-2 are conventionally stdin/stdout/stderr

    # -- open/close -------------------------------------------------------------
    def open(self, path: str, mode: str = "rb",
             expected_size: int = 0) -> StdchkFileHandle:
        """Open ``path`` for sequential reading (``rb``) or writing (``wb``)."""
        if mode in ("r", "rt", "rb"):
            reader = self.client.open_read(path)
            handle = StdchkFileHandle(
                path=path,
                mode="rb",
                reader=reader,
                read_ahead=self.config.read_ahead,
            )
        elif mode in ("w", "wt", "wb"):
            session = self.client.open_write(path, expected_size=expected_size)
            handle = StdchkFileHandle(path=path, mode="wb", write_session=session)
            self.metadata_cache.invalidate(path)
        else:
            raise InvalidFileModeError(f"unsupported mode {mode!r}")
        fd = self._next_fd
        self._next_fd += 1
        self._open_handles[fd] = handle
        handle.fd = fd  # type: ignore[attr-defined]
        return handle

    def close(self, handle: StdchkFileHandle) -> None:
        handle.close()
        fd = getattr(handle, "fd", None)
        if fd is not None:
            self._open_handles.pop(fd, None)
        if handle.writable:
            self.metadata_cache.invalidate(handle.path)

    @property
    def open_file_count(self) -> int:
        return sum(1 for h in self._open_handles.values() if not h.closed)

    # -- whole-file convenience ----------------------------------------------------
    def write_file(self, path: str, data: bytes, block_size: int = 0) -> None:
        """Write ``data`` to ``path`` (open + sequential writes + close)."""
        handle = self.open(path, "wb", expected_size=len(data))
        try:
            if block_size and block_size > 0:
                for start in range(0, len(data), block_size):
                    handle.write(data[start:start + block_size])
            else:
                handle.write(data)
        except Exception:
            handle.abort()
            raise
        finally:
            if not handle.closed:
                self.close(handle)

    def read_file(self, path: str) -> bytes:
        handle = self.open(path, "rb")
        try:
            return handle.read()
        finally:
            self.close(handle)

    def stream_file(self, path: str) -> Iterator[bytes]:
        """Stream ``path`` chunk-by-chunk without buffering it whole.

        The generator's memory footprint stays bounded by the reader's
        in-flight window — the right call for restart-sized images piped
        straight into the restarting process.
        """
        return self.client.read_file_iter(path)

    # -- namespace calls (getattr / readdir / unlink / mkdir) ------------------------
    def stat(self, path: str) -> Dict[str, object]:
        hit, value = self.metadata_cache.get("stat", path)
        if hit:
            return value
        value = self.client.stat(path)
        self.metadata_cache.put("stat", path, value)
        return value

    def getattr(self, path: str) -> Dict[str, object]:
        """Alias matching the FUSE callback name."""
        return self.stat(path)

    def listdir(self, path: str) -> List[str]:
        hit, value = self.metadata_cache.get("listdir", path)
        if hit:
            return value
        value = self.client.listdir(path)
        self.metadata_cache.put("listdir", path, value)
        return value

    def readdir(self, path: str) -> List[str]:
        """Alias matching the FUSE callback name."""
        return self.listdir(path)

    def exists(self, path: str) -> bool:
        try:
            self.stat(path)
            return True
        except FileNotFoundInStdchkError:
            return False
        except Exception:
            return self.client.exists(path)

    def mkdir(self, path: str, retention_kind: Optional[str] = None,
              purge_after: float = 3600.0, keep_last: int = 1) -> None:
        self.client.mkdir(
            path,
            retention_kind=retention_kind,
            purge_after=purge_after,
            keep_last=keep_last,
        )
        self.metadata_cache.invalidate(path)

    def unlink(self, path: str) -> None:
        self.client.delete(path)
        self.metadata_cache.invalidate(path)

    def versions(self, path: str) -> List[Dict[str, object]]:
        """Version history of a file (stdchk-specific extension)."""
        return self.client.versions(path)

    # -- diagnostics --------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, float]:
        cache = self.metadata_cache
        return {
            "hits": cache.hits,
            "misses": cache.misses,
            "hit_ratio": cache.hit_ratio,
            "entries": len(cache),
        }
