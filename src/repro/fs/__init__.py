"""POSIX-like file-system facade over the stdchk client.

The paper mounts stdchk under ``/stdchk`` through FUSE so unmodified
applications and checkpointing libraries can use it.  FUSE (a kernel module)
is outside the reach of a pure-Python reproduction, so this package provides
the equivalent *user-space* layer: a :class:`StdchkFilesystem` object whose
``open``/``read``/``write``/``close``/``listdir``/``stat``/``unlink`` calls
map onto client-proxy operations, handle the granularity difference between
small application writes and megabyte chunks, and cache metadata so most
``readdir``/``getattr`` calls never contact the manager.

Two auxiliary file systems reproduce the Table 1 overhead methodology:
``LocalPassthroughFilesystem`` (the paper's "FUSE to local I/O") and
``NullFilesystem`` (the paper's ``/stdchk/null``).
"""

from repro.fs.file_handle import StdchkFileHandle
from repro.fs.filesystem import StdchkFilesystem
from repro.fs.metadata_cache import MetadataCache
from repro.fs.local_fs import LocalPassthroughFilesystem
from repro.fs.null_fs import NullFilesystem

__all__ = [
    "StdchkFileHandle",
    "StdchkFilesystem",
    "MetadataCache",
    "LocalPassthroughFilesystem",
    "NullFilesystem",
]
