"""File handles for the stdchk FS facade.

A handle adapts POSIX-style small reads/writes to the storage system's
megabyte-chunk granularity (section IV.E): writes are buffered and streamed
into the underlying write session; reads are served from the reader's chunk
cache, and after every read the next ``read_ahead`` bytes are prefetched
*asynchronously* — fetches for upcoming chunks run on reader worker threads
while the application consumes the current range, so a sequential scan never
waits for a chunk that read-ahead already started and never re-fetches a
chunk it partially consumed.
"""

from __future__ import annotations

from typing import Optional

from repro.client.read_path import StripedReader
from repro.client.write_protocols import WriteSession
from repro.exceptions import FileHandleClosedError, InvalidFileModeError


class StdchkFileHandle:
    """A single open file: either write-only or read-only (like the paper's
    checkpoint workload, files are written sequentially once and read back
    sequentially on restart)."""

    def __init__(
        self,
        path: str,
        mode: str,
        write_session: Optional[WriteSession] = None,
        reader: Optional[StripedReader] = None,
        read_ahead: int = 0,
    ) -> None:
        if mode not in ("rb", "wb"):
            raise InvalidFileModeError(
                f"unsupported mode {mode!r}: the facade supports 'rb' and 'wb'"
            )
        if mode == "wb" and write_session is None:
            raise ValueError("write mode requires a write session")
        if mode == "rb" and reader is None:
            raise ValueError("read mode requires a reader")
        self.path = path
        self.mode = mode
        self._write_session = write_session
        self._reader = reader
        self._read_ahead = max(read_ahead, 0)
        self._position = 0
        self._closed = False

    # -- state ----------------------------------------------------------------
    def _require_open(self) -> None:
        if self._closed:
            raise FileHandleClosedError(f"file handle for {self.path} is closed")

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def writable(self) -> bool:
        return self.mode == "wb"

    @property
    def readable(self) -> bool:
        return self.mode == "rb"

    def tell(self) -> int:
        return self._position

    # -- writing ------------------------------------------------------------------
    def write(self, data: bytes) -> int:
        """Accept application bytes (any granularity)."""
        self._require_open()
        if not self.writable:
            raise InvalidFileModeError(f"{self.path} is open read-only")
        written = self._write_session.write(data)
        self._position += written
        return written

    # -- reading --------------------------------------------------------------------
    def read(self, size: int = -1) -> bytes:
        """Read ``size`` bytes from the current position (-1 = to EOF).

        The reader retains fetched chunks in its bounded cache, so repeated
        sub-chunk reads of a sequential scan fetch each chunk exactly once;
        the next ``read_ahead`` bytes are then prefetched asynchronously.
        """
        self._require_open()
        if not self.readable:
            raise InvalidFileModeError(f"{self.path} is open write-only")
        if size is None or size < 0:
            size = max(self._reader.size - self._position, 0)
        if size == 0:
            return b""
        data = self._reader.read_range(self._position, size)
        self._position += len(data)
        if self._read_ahead > 0:
            self._reader.prefetch(self._position, self._read_ahead)
        return data

    def seek(self, offset: int, whence: int = 0) -> int:
        """Reposition the read cursor (only meaningful for read handles)."""
        self._require_open()
        if whence == 0:
            target = offset
        elif whence == 1:
            target = self._position + offset
        elif whence == 2:
            end = self._reader.size if self.readable else self._position
            target = end + offset
        else:
            raise ValueError(f"invalid whence: {whence}")
        if target < 0:
            raise ValueError("cannot seek before the start of the file")
        if self.writable and target != self._position:
            raise InvalidFileModeError(
                "write handles are append-only (checkpoints are written sequentially)"
            )
        self._position = target
        return self._position

    # -- closing ------------------------------------------------------------------------
    def close(self) -> None:
        """Close the handle; for writes this commits the chunk-map."""
        if self._closed:
            return
        if self.writable and self._write_session is not None:
            self._write_session.close()
        if self._reader is not None:
            self._reader.close()
        self._closed = True

    def abort(self) -> None:
        """Abandon a write without committing (the file version never appears)."""
        if self._closed:
            return
        if self.writable and self._write_session is not None:
            self._write_session.abort()
        if self._reader is not None:
            self._reader.close()
        self._closed = True

    def __enter__(self) -> "StdchkFileHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        elif self.writable:
            self.abort()
        else:
            self.close()
