"""The ``/stdchk/null`` file system.

Table 1 of the paper measures the pure user-space-interface overhead with a
file system that ignores write operations and returns immediately.  This
class reproduces the methodology: it accepts the same call sequence as
:class:`~repro.fs.filesystem.StdchkFilesystem`, counts the bytes and calls,
but stores nothing.  Comparing a large write through this facade against a
raw loop measures the per-call cost of the Python call layer, exactly as the
paper's ``/stdchk/null`` isolates the FUSE context-switch cost.
"""

from __future__ import annotations

from typing import Dict, List


class _NullHandle:
    """Write-only handle that discards everything."""

    def __init__(self, fs: "NullFilesystem", path: str, mode: str) -> None:
        self._fs = fs
        self.path = path
        self.mode = mode
        self.closed = False
        self.bytes_written = 0

    def write(self, data: bytes) -> int:
        self._fs.calls += 1
        self.bytes_written += len(data)
        self._fs.bytes_accepted += len(data)
        return len(data)

    def read(self, size: int = -1) -> bytes:
        self._fs.calls += 1
        return b""

    def close(self) -> None:
        self._fs.calls += 1
        self.closed = True

    def __enter__(self) -> "_NullHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class NullFilesystem:
    """Accepts every operation, stores nothing, returns immediately."""

    def __init__(self) -> None:
        self.calls = 0
        self.bytes_accepted = 0
        self.files_created: List[str] = []

    def open(self, path: str, mode: str = "wb", expected_size: int = 0) -> _NullHandle:
        self.calls += 1
        if mode in ("w", "wt", "wb"):
            self.files_created.append(path)
        return _NullHandle(self, path, mode)

    def close(self, handle: _NullHandle) -> None:
        handle.close()

    def write_file(self, path: str, data: bytes, block_size: int = 0) -> None:
        handle = self.open(path, "wb", expected_size=len(data))
        if block_size and block_size > 0:
            for start in range(0, len(data), block_size):
                handle.write(data[start:start + block_size])
        else:
            handle.write(data)
        handle.close()

    def read_file(self, path: str) -> bytes:
        self.calls += 1
        return b""

    def stat(self, path: str) -> Dict[str, object]:
        self.calls += 1
        return {"type": "file", "size": 0}

    def listdir(self, path: str) -> List[str]:
        self.calls += 1
        return []

    def mkdir(self, path: str, **_kwargs) -> None:
        self.calls += 1

    def unlink(self, path: str) -> None:
        self.calls += 1

    def exists(self, path: str) -> bool:
        self.calls += 1
        return False
